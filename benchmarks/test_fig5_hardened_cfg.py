"""Fig. 5 — CFG of the hardened conditional branch.

After the pass, each destination must be guarded by two nested
validation blocks, with per-destination fault-response blocks, and the
checksum computed twice before the (re-evaluated) branch.
"""

from conftest import once

from repro.asm import assemble
from repro.hybrid import harden_branches
from repro.ir.instructions import Call, CondBr, Switch, Unreachable
from repro.ir.passes.pass_manager import standard_cleanup
from repro.lift import Lifter

SOURCE = """
.text
.global _start
_start:
    xor rax, rax
    xor rdi, rdi
    lea rsi, [rel buf]
    mov rdx, 8
    syscall
    mov rbx, qword ptr [buf]
    cmp rbx, 42
    je yes
    mov rdi, 2
    mov rax, 60
    syscall
yes:
    mov rdi, 1
    mov rax, 60
    syscall
.bss
buf: .zero 8
"""


def _harden():
    ir = Lifter(assemble(SOURCE)).lift()
    standard_cleanup().run(ir)
    stats = harden_branches(ir)
    return ir, stats


def test_fig5(benchmark, record):
    ir, stats = once(benchmark, _harden)
    fn = ir.function("entry")
    assert stats.branches_hardened == 1

    chk_blocks = [b for b in fn.blocks if b.name.startswith("chk")]
    flt_blocks = [b for b in fn.blocks
                  if b.name.startswith("flt_resp")]
    assert len(chk_blocks) == 4   # 2 nested validations x 2 edges
    assert len(flt_blocks) == 2   # one fault response per destination

    # every validation block is a switch D, [N -> next] default -> flt
    for block in chk_blocks:
        terminator = block.terminator
        assert isinstance(terminator, Switch)
        assert len(terminator.cases) == 1
        assert terminator.default.name.startswith("flt_resp")

    # fault-response blocks abort
    for block in flt_blocks:
        opcodes = [type(i) for i in block.instructions]
        assert Call in opcodes and Unreachable in opcodes

    # the branch source computes two checksums and re-branches
    source = next(b for b in fn.blocks
                  if isinstance(b.terminator, CondBr) and
                  b.terminator.if_true.name.startswith("chk1"))
    lines = [
        "FIG. 5: hardened-branch CFG structure",
        "",
        f"  source block      : {source.name} "
        f"(condbr on re-evaluated C2)",
    ]
    for block in chk_blocks:
        expected = block.terminator.cases[0][0].value
        lines.append(f"  validation block  : {block.name:<16} "
                     f"expects {expected:#x} else -> "
                     f"{block.terminator.default.name}")
    for block in flt_blocks:
        lines.append(f"  fault response    : {block.name} -> abort()")
    lines.append("")
    lines.append(f"  block UIDs: "
                 + ", ".join(f"{k}={v:#x}"
                             for k, v in list(stats.uids.items())[:4])
                 + ", ...")
    record("fig5_hardened_cfg", "\n".join(lines))
