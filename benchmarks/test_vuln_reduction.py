"""Section V-C results — vulnerability reduction per fault model.

Paper claims:

* R1: "In the case of the 'instruction skip' fault model, we were able
  to resolve all the vulnerabilities using the mentioned
  countermeasures." (both approaches)
* R2: "In the case of the 'single bit flip' fault model we were able to
  reduce the number of vulnerable points by 50% using both
  methodologies."
"""

from conftest import once

from repro.faulter import Faulter
from repro.hybrid import hybrid_harden
from repro.patcher import FaulterPatcherLoop


def _skip_experiment(wl):
    exe = wl.build()
    before = Faulter(exe, wl.good_input, wl.bad_input, wl.grant_marker,
                     name=wl.name).run_campaign("skip")
    fp = FaulterPatcherLoop(exe, wl.good_input, wl.bad_input,
                            wl.grant_marker, models=("skip",),
                            name=wl.name).run()
    hy = hybrid_harden(exe, wl.good_input, wl.bad_input,
                       wl.grant_marker, name=wl.name, models=("skip",))
    return before, fp, hy


def _bitflip_experiment(wl):
    exe = wl.build()
    before = Faulter(exe, wl.good_input, wl.bad_input, wl.grant_marker,
                     name=wl.name).run_campaign("bitflip")
    fp = FaulterPatcherLoop(exe, wl.good_input, wl.bad_input,
                            wl.grant_marker,
                            models=("skip", "bitflip"),
                            name=wl.name).run()
    return before, fp


def test_r1_instruction_skip_resolved(benchmark, record, pincheck_wl,
                                      bootloader_wl):
    results = once(benchmark, lambda: {
        wl.name: _skip_experiment(wl)
        for wl in (pincheck_wl, bootloader_wl)
    })
    lines = [
        "R1: instruction-skip vulnerabilities (successful faults)",
        "",
        "  case study          before   after F+P   after Hybrid",
        "  ------------------  ------   ---------   ------------",
    ]
    for name, (before, fp, hy) in results.items():
        after_fp = fp.final_reports["skip"].outcomes.get("success", 0)
        after_hy = hy.final_reports["skip"].outcomes.get("success", 0)
        lines.append(f"  {name:<18}  {before.outcomes['success']:>6}   "
                     f"{after_fp:>9}   {after_hy:>12}")
        assert before.outcomes["success"] > 0
        assert after_fp == 0, f"{name}: F+P left skip vulnerabilities"
        assert after_hy == 0, f"{name}: hybrid left skip vulnerabilities"
        assert fp.converged
    lines.append("")
    lines.append("  paper: all instruction-skip vulnerabilities "
                 "resolved by both methods -- reproduced")
    record("r1_skip_resolved", "\n".join(lines))


def test_r2_bitflip_halved(benchmark, record, pincheck_wl,
                           bootloader_wl):
    results = once(benchmark, lambda: {
        wl.name: _bitflip_experiment(wl)
        for wl in (pincheck_wl, bootloader_wl)
    })
    lines = [
        "R2: single-bit-flip vulnerable points (program sites)",
        "",
        "  case study          sites before   sites fixed   reduction",
        "  ------------------  ------------   -----------   ---------",
    ]
    for name, (before, fp) in results.items():
        reduction = fp.site_reduction_percent
        fixed = fp.original_sites - fp.remaining_sites
        lines.append(f"  {name:<18}  {fp.original_sites:>12}   "
                     f"{fixed:>11}   {reduction:>8.0f}%")
        # paper: ~50% of the vulnerable points are fixed
        assert reduction >= 50.0, (
            f"{name}: only {reduction:.0f}% of bit-flip sites fixed")
        after = fp.final_reports["bitflip"]
        rate_before = before.outcomes["success"] / before.total_faults
        rate_after = (after.outcomes["success"] / after.total_faults
                      if after.total_faults else 0)
        lines.append(f"  {'':<18}  success rate "
                     f"{100*rate_before:.2f}% -> {100*rate_after:.2f}%  "
                     f"({fp.emergent_points} emergent point(s) in "
                     f"pattern code)")
        assert rate_after <= rate_before
    lines.append("")
    lines.append("  paper: vulnerable points reduced by 50% -- "
                 "reproduced at site granularity")
    record("r2_bitflip_reduction", "\n".join(lines))
