"""Ablation A3 — detouring vs reassembleable disassembly (Section III-B).

The paper surveys three rewriting schemes and argues that detouring
"introduces a high performance degradation given the two control
transfers at patch points", while reassembleable disassembly inlines
the instrumentation and "performance penalty caused by jump
instructions [is] alleviated".  This benchmark makes that comparison
measurable: the same duplication countermeasure applied both ways,
compared on code size and dynamic instruction count.
"""

from conftest import once

from repro.detour.rewriter import duplicate_with_detours
from repro.disasm import disassemble, reassemble
from repro.emu import run_executable
from repro.gtirb.ir import InsnEntry
from repro.patcher import Patcher
from repro.patcher.patterns import _is_idempotent, duplicate_pattern


def _inline_duplicate(exe):
    """Duplicate idempotent instructions via reassembleable disassembly
    (the same protection the detour variant applies)."""
    module = disassemble(exe)
    patcher = Patcher(module)
    targets = [
        entry
        for block in module.text().code_blocks()
        for entry in list(block.entries)
        if not entry.protected and not entry.insn.is_control_flow
        and entry.insn.name != "syscall" and _is_idempotent(entry)
    ]
    applied = 0
    for entry in targets:
        located = patcher._locate(entry)
        if located is None:
            continue
        from repro.patcher.patterns import PatchBuilder
        builder = PatchBuilder(patcher.module,
                               patcher.ensure_faulthandler(), site=entry)
        if duplicate_pattern(builder, entry):
            patcher._splice(*located[0:3], builder)
            applied += 1
    return reassemble(module), applied


def _measure(wl):
    exe = wl.build()
    baseline = run_executable(exe, stdin=wl.good_input)
    detoured, stats = duplicate_with_detours(exe)
    inlined, applied = _inline_duplicate(exe)
    detour_run = run_executable(detoured, stdin=wl.good_input)
    inline_run = run_executable(inlined, stdin=wl.good_input)
    assert wl.grant_marker in detour_run.stdout
    assert wl.grant_marker in inline_run.stdout

    def size(image):
        return sum(s.mem_size for s in image.sections if s.executable)

    return {
        "baseline": (exe.code_size(), baseline.steps),
        "detour": (size(detoured), detour_run.steps, stats.patched),
        "inline": (size(inlined), inline_run.steps, applied),
    }


def test_detour_vs_reassembly(benchmark, record, pincheck_wl):
    results = once(benchmark, lambda: _measure(pincheck_wl))
    base_size, base_steps = results["baseline"]
    det_size, det_steps, det_patched = results["detour"]
    inl_size, inl_steps, inl_patched = results["inline"]

    lines = [
        "ABLATION A3: detouring vs reassembleable disassembly "
        "(duplication countermeasure, pincheck, good input)",
        "",
        "  scheme                  code size   dynamic steps   patched",
        "  ---------------------   ---------   -------------   -------",
        f"  baseline                {base_size:>8}B   {base_steps:>13}"
        f"   {'-':>7}",
        f"  patch-based detour      {det_size:>8}B   {det_steps:>13}"
        f"   {det_patched:>7}",
        f"  reassembleable inline   {inl_size:>8}B   {inl_steps:>13}"
        f"   {inl_patched:>7}",
        "",
        f"  detour executes {det_steps - base_steps} extra dynamic "
        f"instructions ({100*(det_steps-base_steps)/base_steps:.0f}%), "
        "dominated by the two control",
        "  transfers per patch point; inlined duplication pays only "
        f"the duplicates themselves "
        f"({100*(inl_steps-base_steps)/base_steps:.0f}%).",
    ]
    record("ablation_detour_vs_reassembly", "\n".join(lines))

    # Section III-B claims, as assertions:
    # 1. detouring costs more dynamic instructions than inlining the
    #    same instrumentation
    assert det_steps > inl_steps > base_steps
    # 2. per patched instruction, the detour pays at least the two
    #    control transfers
    assert det_steps - base_steps >= 2 * det_patched
