"""Ablation A4 — optimizer vs countermeasure interaction.

The hardening pass introduces *intentional* redundancy; an optimizing
compiler that merges equal expressions silently removes it (which is
why the paper's LLVM pass must sit late and keep its duplicates
volatile).  This bench demonstrates the collapse: CSE ignoring the
volatile markers merges the duplicated checksums, and the faulter finds
successful skip faults again.
"""

from conftest import once

from repro.asm import assemble
from repro.faulter import Faulter
from repro.hybrid import harden_branches
from repro.ir.passes import cse, dce, instruction_histogram
from repro.ir.passes.pass_manager import standard_cleanup
from repro.lift import Lifter
from repro.lower.pipeline import lower_module

PROGRAM = """
.text
.global _start
_start:
    xor rax, rax
    xor rdi, rdi
    lea rsi, [rel buf]
    mov rdx, 8
    syscall
    mov rbx, qword ptr [buf]
    cmp rbx, 42
    jne deny
    mov rax, 1            # the privileged path prints the marker
    mov rdi, 1
    lea rsi, [rel msg]
    mov rdx, 3
    syscall
    mov rax, 60
    xor rdi, rdi
    syscall
deny:                     # last block: a derailed exit falls off the
    mov rax, 60           # end of the program instead of into the
    mov rdi, 1            # privileged block above
    syscall
.data
msg: .ascii "OK\\n"
.bss
buf: .zero 8
"""

GOOD = (42).to_bytes(8, "little")
BAD = (7).to_bytes(8, "little")
MARKER = b"OK"


def _build(respect_volatile: bool):
    exe = assemble(PROGRAM)
    ir = Lifter(exe).lift()
    standard_cleanup().run(ir)
    fn = ir.function("entry")
    harden_branches(ir)
    before = instruction_histogram(fn)
    cse(fn, respect_no_merge=respect_volatile)
    dce(fn)
    after = instruction_histogram(fn)
    hardened = lower_module(ir, exe, trap_after_jmp=True)
    return exe, hardened, before, after


def _skip_successes(exe, hardened):
    faulter = Faulter(hardened, GOOD, BAD, MARKER, name="cse-ablation")
    report = faulter.run_campaign("skip")
    return report.outcomes.get("success", 0)


def test_cse_interaction(benchmark, record):
    results = once(benchmark, lambda: {
        "volatile respected": _build(True),
        "volatile ignored": _build(False),
    })

    lines = [
        "ABLATION A4: CSE vs the duplicated-checksum countermeasure",
        "",
        "  configuration        xor  and  or  icmp   successful skips",
        "  ------------------   ---  ---  --  ----   ----------------",
    ]
    successes = {}
    for label, (exe, hardened, before, after) in results.items():
        count = _skip_successes(exe, hardened)
        successes[label] = count
        lines.append(
            f"  {label:<18}   {after.get('xor', 0):>3}  "
            f"{after.get('and', 0):>3}  {after.get('or', 0):>2}  "
            f"{after.get('icmp', 0):>4}   {count:>16}")
    lines.append("")
    lines.append("  merging the duplicates halves the checksum "
                 "arithmetic and re-creates a single")
    lines.append("  point of failure; the volatile markers keep the "
                 "redundancy (and the protection).")
    record("ablation_cse_interaction", "\n".join(lines))

    safe = results["volatile respected"]
    unsafe = results["volatile ignored"]
    # structural collapse: the unsafe variant merged the duplicates
    assert unsafe[3]["xor"] < safe[3]["xor"]
    assert unsafe[3]["and"] < safe[3]["and"]
    # protection collapse: the hardened-but-merged binary is vulnerable
    # again, while the volatile-respecting one stays clean
    assert successes["volatile respected"] == 0
    assert successes["volatile ignored"] > 0
