"""Gate campaign-engine throughput against the committed baseline.

CI's ``bench`` job runs ``benchmarks/test_engine_throughput.py`` (which
rewrites ``BENCH_campaign.json``) and then::

    python benchmarks/check_regression.py BASELINE.json FRESH.json

The check fails (exit 1) when any backend's — or any fault-model
row's (the ``models`` section, e.g. ``reg-bitflip``) —
``faults_per_second`` drops more than ``--threshold`` (default 25%)
below the committed baseline, or when any row *emulates more steps*
than the baseline — step counts are deterministic for a fixed
workload and seed, so an increase is an algorithmic regression, not
noise.  Fewer steps than the baseline is an improvement; the script
reminds you to commit the regenerated JSON so the trajectory records
it.

The warm-fleet acceptance property is gated here too: whenever the
fresh ``backends`` section carries both ``multiprocess`` and
``multiprocess-warm`` rows, the warm row must sustain at least
``WARM_MIN_SPEEDUP`` x the cold row's faults/s — fresh numbers on
both sides, so the gate compares schedulers on the same machine.
"""

from __future__ import annotations

import argparse
import json
import sys

# must match benchmarks/test_engine_throughput.py::WARM_MIN_SPEEDUP
WARM_MIN_SPEEDUP = 2.0

# rows whose emulated-step count depends on work-stealing order (a
# warm worker's retained checkpoint prefix changes how much replay a
# stolen partition needs), so only their faults/s is gated
NONDETERMINISTIC_STEP_ROWS = {"multiprocess-warm"}


def _compare_rows(kind: str, baseline_rows: dict, fresh_rows: dict,
                  threshold: float) -> list[str]:
    """Gate one named-row section (``backends`` or ``models``)."""
    failures = []
    missing = set(baseline_rows) - set(fresh_rows)
    if missing:
        failures.append(
            f"{kind} disappeared from the fresh run: {sorted(missing)}")
    for name in sorted(set(baseline_rows) & set(fresh_rows)):
        old, new = baseline_rows[name], fresh_rows[name]
        old_fps, new_fps = old.get("faults_per_second"), \
            new.get("faults_per_second")
        if old_fps and new_fps is not None:
            floor = old_fps * (1.0 - threshold)
            if new_fps < floor:
                failures.append(
                    f"{name}: {new_fps:.2f} faults/s is "
                    f"{100 * (1 - new_fps / old_fps):.1f}% below the "
                    f"baseline {old_fps:.2f} "
                    f"(threshold {100 * threshold:.0f}%)")
        old_steps = old.get("emulated_steps")
        new_steps = new.get("emulated_steps")
        if name not in NONDETERMINISTIC_STEP_ROWS \
                and old_steps is not None and new_steps is not None \
                and new_steps > old_steps:
            failures.append(
                f"{name}: emulated steps grew {old_steps} -> "
                f"{new_steps} (deterministic metric; this is an "
                f"algorithmic regression)")
    return failures


def _check_warm_speedup(fresh_backends: dict) -> list[str]:
    """Fresh-vs-fresh gate: warm fleet must beat the cold fleet."""
    cold = fresh_backends.get("multiprocess", {}).get(
        "faults_per_second")
    warm = fresh_backends.get("multiprocess-warm", {}).get(
        "faults_per_second")
    if not cold or warm is None:
        return []
    if warm < WARM_MIN_SPEEDUP * cold:
        return [
            f"multiprocess-warm: {warm:.2f} faults/s is below "
            f"{WARM_MIN_SPEEDUP}x the fresh cold multiprocess "
            f"{cold:.2f} faults/s (warm-fleet acceptance gate)"]
    return []


def compare(baseline: dict, fresh: dict, threshold: float) -> list[str]:
    """Return a list of human-readable regression messages."""
    return (
        _compare_rows("backends", baseline.get("backends", {}),
                      fresh.get("backends", {}), threshold)
        + _compare_rows("models", baseline.get("models", {}),
                        fresh.get("models", {}), threshold)
        + _check_warm_speedup(fresh.get("backends", {}))
    )


def render(baseline: dict, fresh: dict) -> str:
    lines = [f"{'row':<16}{'faults/s':>22}{'emulated steps':>26}"]
    for section in ("backends", "models"):
        fresh_rows = fresh.get(section, {})
        for name, old in baseline.get(section, {}).items():
            new = fresh_rows.get(name, {})
            lines.append(
                f"{name:<16}"
                f"{old.get('faults_per_second')!s:>10} ->"
                f"{new.get('faults_per_second')!s:>10}"
                f"{old.get('emulated_steps')!s:>14} ->"
                f"{new.get('emulated_steps')!s:>10}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_campaign.json")
    parser.add_argument("fresh", help="freshly regenerated JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="tolerated fractional faults/s drop "
                             "(default: 0.25)")
    args = parser.parse_args(argv)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.fresh) as handle:
        fresh = json.load(handle)
    print(render(baseline, fresh))
    failures = compare(baseline, fresh, args.threshold)
    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    improved = [
        name
        for name, old in baseline.get("backends", {}).items()
        if fresh.get("backends", {}).get(name, {}).get(
            "emulated_steps", old.get("emulated_steps"))
        < old.get("emulated_steps", 0)
    ]
    if improved:
        print(f"\nemulated steps improved for {improved}; commit the "
              f"regenerated BENCH_campaign.json to record it")
    print("\nbench check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
