"""Fig. 3 — both end-to-end flows produce working hardened binaries.

Lower path: binary -> faulter -> patcher -> patched binary.
Upper path: binary -> lifter -> IR countermeasure -> lowered binary.
"""

from conftest import once

from repro.api import harden_binary
from repro.emu import run_executable


def _both_paths(wl):
    exe = wl.build()
    fp = harden_binary(exe, wl.good_input, wl.bad_input,
                       wl.grant_marker, approach="faulter+patcher",
                       fault_models=("skip",), name=wl.name)
    hy = harden_binary(exe, wl.good_input, wl.bad_input,
                       wl.grant_marker, approach="hybrid",
                       fault_models=("skip",), name=wl.name)
    return exe, fp, hy


def test_fig3(benchmark, record, pincheck_wl):
    wl = pincheck_wl
    exe, fp, hy = once(benchmark, lambda: _both_paths(wl))

    lines = ["FIG. 3: end-to-end hardening flows", ""]
    for label, result in (("Faulter+Patcher (lower path)", fp),
                          ("Hybrid (upper path)", hy)):
        good = run_executable(result.hardened, stdin=wl.good_input)
        bad = run_executable(result.hardened, stdin=wl.bad_input)
        residual = result.final_reports["skip"].outcomes.get(
            "success", 0)
        lines.append(f"  {label}:")
        lines.append(f"    size {exe.code_size()}B -> "
                     f"{result.hardened.code_size()}B")
        lines.append(f"    good input -> "
                     f"{good.stdout.decode().strip()!r}")
        lines.append(f"    bad input  -> "
                     f"{bad.stdout.decode().strip()!r}")
        lines.append(f"    residual successful skip faults: {residual}")
        lines.append("")
        assert wl.grant_marker in good.stdout
        assert wl.grant_marker not in bad.stdout
        assert residual == 0
    record("fig3_end_to_end", "\n".join(lines))
