"""Ablation A5 — statistical fault injection (cited methodology).

The paper's related work leans on Leveugle et al. (DATE 2009) for
sampling fault spaces with quantified error.  This bench runs the
exhaustive single-bit-flip campaign as ground truth and compares the
Leveugle-sized sample estimate: the confidence interval must cover the
true success rate at a fraction of the injections.
"""

from conftest import once

from repro.faulter import Faulter
from repro.faulter.statistical import (
    estimate_vulnerability, required_samples)


def _experiment(wl):
    faulter = Faulter(wl.build(), wl.good_input, wl.bad_input,
                      wl.grant_marker, name=wl.name)
    exhaustive = faulter.run_campaign("bitflip")
    estimate = estimate_vulnerability(faulter, "bitflip",
                                      margin=0.01, seed=2024)
    return exhaustive, estimate


def test_statistical_fi(benchmark, record, bootloader_wl):
    exhaustive, estimate = once(benchmark,
                                lambda: _experiment(bootloader_wl))
    truth = exhaustive.outcomes["success"] / exhaustive.total_faults
    low, high = estimate.interval

    lines = [
        "ABLATION A5: statistical vs exhaustive fault injection "
        f"({bootloader_wl.name}, single bit flip)",
        "",
        f"  fault population     : {estimate.population}",
        f"  exhaustive campaign  : {exhaustive.total_faults} "
        f"injections, success rate {100 * truth:.3f}%",
        f"  sampled campaign     : {estimate.samples} injections "
        f"({100 * estimate.samples / estimate.population:.0f}% of the "
        "space)",
        f"  estimate             : {estimate.summary()}",
        "",
        f"  ground truth {'INSIDE' if low <= truth <= high else 'OUTSIDE'}"
        f" the {100 * estimate.confidence:.0f}% interval",
    ]
    record("ablation_statistical_fi", "\n".join(lines))

    assert estimate.population == exhaustive.total_faults
    assert estimate.samples < exhaustive.total_faults
    assert low <= truth <= high
    # the Leveugle sizing must not degenerate
    assert estimate.samples >= required_samples(
        estimate.population, 0.02, 0.95)
