"""Shared fixtures for the experiment-regeneration benchmarks.

Every benchmark writes its regenerated table/figure to
``benchmarks/out/<name>.txt`` (and prints it), so the paper artifacts
can be inspected after a ``pytest benchmarks/ --benchmark-only`` run.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def results_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def record(results_dir, request):
    """Callable writing a rendered artifact to disk and stdout."""

    def _record(name: str, text: str):
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _record


@pytest.fixture(scope="session")
def pincheck_wl():
    from repro.workloads import pincheck
    return pincheck.workload()


@pytest.fixture(scope="session")
def bootloader_wl():
    from repro.workloads import bootloader
    return bootloader.workload()


@pytest.fixture(scope="session")
def rich_pincheck_wl():
    from repro.workloads import pincheck
    return pincheck.workload(rich=True)


@pytest.fixture(scope="session")
def rich_bootloader_wl():
    from repro.workloads import bootloader
    return bootloader.workload(rich=True)


def once(benchmark, fn):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
