"""Fig. 4 — assembly and CFG of a simple conditional branch.

Recovers the three-block diamond (BB1 -> {BB2, BB3}) of a compare+branch
and emits it as DOT.
"""

from conftest import once

from repro.asm import assemble
from repro.disasm import disassemble
from repro.gtirb import build_cfg

SOURCE = """
.text
.global _start
_start:
    mov rbx, qword ptr [value]   # BB1
    cmp rbx, 42
    jne target2
    mov rdi, 1                   # BB2 (fall-through, target1)
    mov rax, 60
    syscall
target2:
    mov rdi, 2                   # BB3
    mov rax, 60
    syscall
.data
value: .quad 42
"""


def test_fig4(benchmark, record):
    module = once(benchmark,
                  lambda: disassemble(assemble(SOURCE)))
    cfg = build_cfg(module)
    blocks = module.text().code_blocks()
    assert len(blocks) == 3, [repr(b) for b in blocks]

    bb1 = blocks[0]
    edges = cfg.successors(bb1)
    kinds = sorted(e.kind for e in edges)
    assert kinds == ["branch", "fallthrough"]
    targets = {e.dst for e in edges}
    assert targets == set(blocks[1:])

    dot = cfg.to_dot(module)
    lines = [
        "FIG. 4: CFG of a simple conditional branch",
        "",
        f"  BB1 @ {bb1.address:#x}: "
        + "; ".join(str(e.insn) for e in bb1.entries),
        f"  BB2 @ {blocks[1].address:#x} (C1 == T edge)",
        f"  BB3 @ {blocks[2].address:#x} (C1 == F edge)",
        "",
        dot,
    ]
    record("fig4_branch_cfg", "\n".join(lines))
    assert "digraph" in dot
    assert dot.count("->") >= 2
