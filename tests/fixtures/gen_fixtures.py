#!/usr/bin/env python3
"""Regenerate the committed ELF fixtures in this directory.

The fixtures are PIE and stripped builds of the bundled
secure-bootloader workload (``repro.workloads.bootloader``, 8-byte
firmware), produced entirely by the repo's own assembler and ELF
writer — no external toolchain is required, in CI or anywhere else::

    PYTHONPATH=src python tests/fixtures/gen_fixtures.py

Deterministic: the workload source, the assembler, and the writer are
all reproducible, so regeneration is byte-identical unless one of
them changed (in which case the new bytes are the fixture update).
``README.md`` documents the campaign inputs each fixture expects.
"""

from __future__ import annotations

import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent.parent / "src"))

from repro.asm.assembler import assemble  # noqa: E402
from repro.binfmt.writer import write_elf  # noqa: E402
from repro.workloads import bootloader  # noqa: E402

FIRMWARE_SIZE = 8


def fixture_workload():
    """The workload both fixtures are built from."""
    return bootloader.workload(size=FIRMWARE_SIZE)


def build_pie():
    """ET_DYN build: dynamic symbols + RELATIVE relocations."""
    return assemble(fixture_workload().source, pie=True)


def build_stripped():
    """ET_EXEC build with the symbol table dropped (as strip(1))."""
    return assemble(fixture_workload().source).stripped()


def main() -> int:
    wl = fixture_workload()
    for name, exe in (("bootloader_pie.elf", build_pie()),
                      ("bootloader_stripped.elf", build_stripped())):
        blob = write_elf(exe)
        (HERE / name).write_bytes(blob)
        print(f"{name}: {len(blob)} bytes "
              f"(pie={exe.pie}, symbols={len(exe.symbols)}, "
              f"dynamic={len(exe.dynamic_symbols)}, "
              f"relocations={len(exe.relocations)})")
    print(f"good input (hex): {wl.good_input.hex()}")
    print(f"bad input  (hex): {wl.bad_input.hex()}")
    print(f"marker          : {wl.grant_marker.decode()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
