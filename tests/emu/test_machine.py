"""End-to-end emulator tests over the corpus and case studies."""

import pytest

from repro.emu import Machine, run_executable
from repro.workloads import bootloader, corpus, pincheck


class TestCorpus:
    def test_exit42(self):
        result = run_executable(corpus.build("exit42"))
        assert result.reason == "exit"
        assert result.exit_code == 42

    def test_echo(self):
        result = run_executable(corpus.build("echo4"), stdin=b"abcd")
        assert result.stdout == b"abcd"
        assert result.exit_code == 0

    def test_arith(self):
        result = run_executable(corpus.build("arith"))
        assert result.exit_code == 52

    def test_infinite_loop_hits_max_steps(self):
        result = run_executable(corpus.build("infinite_loop"), max_steps=100)
        assert result.reason == "max-steps"
        assert result.steps == 100

    def test_flags_survive_stack(self):
        result = run_executable(corpus.build("stack_ops"))
        assert result.exit_code == 7

    def test_call_ret(self):
        result = run_executable(corpus.build("call_ret"))
        assert result.exit_code == 8

    def test_indirect_call(self):
        result = run_executable(corpus.build("indirect"))
        assert result.exit_code == 9

    def test_memwrites(self):
        result = run_executable(corpus.build("memwrites"))
        assert result.exit_code == 30

    def test_setcc_cmov(self):
        result = run_executable(corpus.build("setcc_cmov"))
        assert result.exit_code == 1


class TestPincheck:
    def test_correct_pin_grants(self):
        wl = pincheck.workload()
        result = run_executable(wl.build(), stdin=wl.good_input)
        assert wl.grant_marker in result.stdout
        assert result.exit_code == 0

    def test_wrong_pin_denies(self):
        wl = pincheck.workload()
        result = run_executable(wl.build(), stdin=wl.bad_input)
        assert b"DENIED" in result.stdout
        assert result.exit_code == 1

    def test_short_input_denies(self):
        wl = pincheck.workload()
        result = run_executable(wl.build(), stdin=b"1")
        assert b"DENIED" in result.stdout

    def test_custom_pin(self):
        wl = pincheck.workload(pin="90210")
        result = run_executable(wl.build(), stdin=b"90210")
        assert wl.grant_marker in result.stdout


class TestBootloader:
    def test_valid_firmware_boots(self):
        wl = bootloader.workload()
        result = run_executable(wl.build(), stdin=wl.good_input)
        assert wl.grant_marker in result.stdout
        assert result.exit_code == 0

    def test_tampered_firmware_fails(self):
        wl = bootloader.workload()
        result = run_executable(wl.build(), stdin=wl.bad_input)
        assert b"FAIL" in result.stdout
        assert result.exit_code == 1

    def test_every_single_byte_tamper_fails(self):
        wl = bootloader.workload(size=8)
        exe = wl.build()
        firmware = wl.extra["firmware"]
        for i in range(len(firmware)):
            tampered = bytearray(firmware)
            tampered[i] ^= 0x80
            result = run_executable(exe, stdin=bytes(tampered))
            assert b"FAIL" in result.stdout, f"byte {i} tamper booted!"

    def test_reference_hash_matches_guest(self):
        assert bootloader.fnv1a64(b"") == bootloader.FNV_OFFSET
        # guest computes the same digest implicitly: good input boots
        wl = bootloader.workload(size=24)
        result = run_executable(wl.build(), stdin=wl.good_input)
        assert wl.grant_marker in result.stdout


class TestMachineInternals:
    def test_trace_records_rips(self):
        machine = Machine(corpus.build("exit42"))
        result = machine.run(record_trace=True)
        assert len(result.trace) == result.steps + 1  # incl. exiting syscall
        entry = machine.image.entry
        assert result.trace[0] == entry

    def test_skip_fault_changes_behavior(self):
        # skipping 'mov rdi, 42' leaves rdi=0 -> exit code 0
        machine = Machine(corpus.build("exit42"))
        result = machine.run(fault_step=1, fault_intercept=lambda i, c: None)
        assert result.exit_code == 0

    def test_snapshot_restore_roundtrip(self):
        wl = pincheck.workload()
        machine = Machine(wl.build(), stdin=wl.bad_input)
        baseline = machine.run()
        machine2 = Machine(wl.build(), stdin=wl.bad_input)
        state = machine2.snapshot()
        machine2.memory.journal_begin()
        first = machine2.run()
        machine2.memory.journal_rollback()
        machine2.restore(state)
        second = machine2.run()
        assert first.behavior() == baseline.behavior() == second.behavior()

    def test_unknown_syscall_is_enosys(self):
        from repro.asm import assemble
        source = """
        .text
        .global _start
        _start:
            mov rax, 9999
            syscall
            mov rdi, 0
            cmp rax, -38
            jne bad
            mov rdi, 5
        bad:
            mov rax, 60
            syscall
        """
        result = run_executable(assemble(source))
        assert result.exit_code == 5

    def test_write_to_text_crashes(self):
        from repro.asm import assemble
        source = """
        .text
        .global _start
        _start:
            lea rax, [rel _start]
            mov qword ptr [rax], 0
            mov rax, 60
            syscall
        """
        result = run_executable(assemble(source))
        assert result.reason == "crash"
        assert "write" in result.crash_detail

    def test_jump_to_unmapped_crashes(self):
        from repro.asm import assemble
        source = """
        .text
        .global _start
        _start:
            mov rax, 0x10
            jmp rax
        """
        result = run_executable(assemble(source))
        assert result.reason == "crash"
