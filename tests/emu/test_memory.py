"""Memory model and write-journal property tests."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.emu.memory import Memory
from repro.errors import MemoryFault

BASE = 0x10000


def fresh(size=0x3000, flags="rw"):
    memory = Memory()
    memory.map(BASE, size, flags)
    return memory


class TestBasics:
    def test_read_back(self):
        memory = fresh()
        memory.write(BASE + 5, b"hello")
        assert memory.read(BASE + 5, 5) == b"hello"

    def test_zero_initialized(self):
        assert fresh().read(BASE, 16) == bytes(16)

    def test_cross_page_access(self):
        memory = fresh()
        data = bytes(range(64))
        memory.write(BASE + 0xFE0, data)
        assert memory.read(BASE + 0xFE0, 64) == data

    def test_unmapped_read_faults(self):
        with pytest.raises(MemoryFault):
            fresh().read(0x9999_0000, 1)

    def test_write_to_readonly_faults(self):
        memory = fresh(flags="r")
        with pytest.raises(MemoryFault):
            memory.write(BASE, b"x")

    def test_fetch_requires_execute(self):
        memory = fresh(flags="rw")
        with pytest.raises(MemoryFault):
            memory.fetch(BASE, 4)
        executable = fresh(flags="rx")
        assert executable.fetch(BASE, 4) == bytes(4)

    def test_u64_helpers(self):
        memory = fresh()
        memory.write_u64(BASE, 0x1122334455667788)
        assert memory.read_u64(BASE) == 0x1122334455667788


class TestJournal:
    @given(st.lists(
        st.tuples(st.integers(0, 0x2FF0),
                  st.binary(min_size=1, max_size=16)),
        min_size=1, max_size=32))
    @settings(max_examples=150, deadline=None)
    def test_rollback_restores_exact_state(self, writes):
        memory = fresh()
        memory.write(BASE, bytes(range(256)))  # pre-journal content
        snapshot = memory.read(BASE, 0x3000)
        memory.journal_begin()
        for offset, data in writes:
            memory.write(BASE + offset, data)
        memory.journal_rollback()
        assert memory.read(BASE, 0x3000) == snapshot

    @given(st.lists(
        st.tuples(st.integers(0, 0x2FF0),
                  st.binary(min_size=1, max_size=16)),
        min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_discard_keeps_writes(self, writes):
        memory = fresh()
        memory.journal_begin()
        for offset, data in writes:
            memory.write(BASE + offset, data)
        memory.journal_discard()
        for offset, data in writes[-1:]:
            assert memory.read(BASE + offset, len(data)) == data

    def test_overlapping_writes_rollback_in_order(self):
        memory = fresh()
        memory.write(BASE, b"AAAA")
        memory.journal_begin()
        memory.write(BASE, b"BBBB")
        memory.write(BASE + 1, b"CC")
        memory.write(BASE, b"DDDD")
        memory.journal_rollback()
        assert memory.read(BASE, 4) == b"AAAA"

    def test_rollback_without_journal_is_noop(self):
        memory = fresh()
        memory.write(BASE, b"xy")
        memory.journal_rollback()
        assert memory.read(BASE, 2) == b"xy"
