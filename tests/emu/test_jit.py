"""Trace-compiled execution: equivalence, coherence, flag replay.

The compiled tier's contract is bit-identity with the precise stepper
— same registers, flags, memory, stdout, step counts and crash
behaviour — which these tests check three ways: whole-program
differential runs, randomized inline-flag replay against
:mod:`repro.emu.flagops`, and the coherence edges (self-modifying
code, fault windows, superblock boundaries).
"""

import random

from repro.emu.flagops import PARITY_TABLE, Flags
from repro.emu.jit import TraceCompiler
from repro.emu.jit.codegen import _Emitter, _inline_flags
from repro.emu.jit.superblock import MAX_BODY, carve
from repro.emu.machine import Machine
from repro.workloads import bootloader, corpus, pincheck

FLAG_NAMES = ("cf", "pf", "af", "zf", "sf", "of")


def _state(machine):
    flags = machine.cpu.flags
    return (tuple(machine.cpu.regs), machine.cpu.rip,
            tuple(getattr(flags, name) for name in FLAG_NAMES),
            bytes(machine.io.stdout))


def _run_both(image, stdin=b"", **kwargs):
    precise = Machine(image, stdin=stdin)
    result_p = precise.run(**kwargs)
    compiled = Machine(image, stdin=stdin)
    TraceCompiler().attach(compiled)
    result_c = compiled.run(**kwargs)
    return (precise, result_p), (compiled, result_c)


def _assert_identical(image, stdin=b"", **kwargs):
    (precise, rp), (compiled, rc) = _run_both(image, stdin, **kwargs)
    assert _state(precise) == _state(compiled)
    assert rp.behavior() == rc.behavior()
    assert rp.steps == rc.steps


class TestWholeProgramEquivalence:
    def test_bootloader_both_inputs(self):
        wl = bootloader.workload(rich=True)
        image = wl.build()
        for stdin in (wl.good_input, wl.bad_input):
            _assert_identical(image, stdin)

    def test_pincheck_both_inputs(self):
        wl = pincheck.workload()
        image = wl.build()
        for stdin in (wl.good_input, wl.bad_input):
            _assert_identical(image, stdin)

    def test_corpus_programs(self):
        for name in ("exit42", "arith", "stack_ops", "call_ret",
                     "unary_ops", "shifts_by_cl", "byte_loop",
                     "memwrites"):
            _assert_identical(corpus.build(name))

    def test_compiled_tier_actually_engages(self):
        wl = bootloader.workload(rich=True)
        machine = Machine(wl.build(), stdin=wl.bad_input)
        compiler = TraceCompiler().attach(machine)
        result = machine.run()
        assert compiler.compiled_blocks > 0
        assert compiler.compiled_steps > result.steps // 2

    def test_step_budget_never_overshoots(self):
        wl = bootloader.workload(rich=True)
        for budget in (1, 2, 7, 64, 150):
            _assert_identical(wl.build(), wl.bad_input,
                              max_steps=budget)


class TestFaultWindows:
    """Fault steps always run on the precise stepper, mid-block too."""

    def test_fault_inside_superblock(self):
        # steps 3..8 land inside the first carved superblocks; a
        # fault plan entry there must split compiled execution
        wl = bootloader.workload(rich=True)
        image = wl.build()
        from repro.faulter.models import model_by_name
        model = model_by_name("skip")
        probe = Machine(image, stdin=wl.bad_input)
        trace = probe.run(record_trace=True).trace
        for step in (0, 3, 5, 17, 40, len(trace) - 2):
            insn = Machine(image).fetch_decode(trace[step])
            variants = model.variants(insn, None)
            if not variants:
                continue
            plan = {step: model.effect(variants[0])}
            _assert_identical(image, wl.bad_input, fault_plan=plan)

    def test_fault_window_straddles_block_boundary(self):
        # two plan entries bracketing a superblock boundary: the jit
        # must stop before each and resume between them
        wl = bootloader.workload(rich=True)
        image = wl.build()
        from repro.faulter.models import model_by_name
        model = model_by_name("skip")
        probe = Machine(image, stdin=wl.bad_input)
        trace = probe.run(record_trace=True).trace
        pairs = [(4, 9), (10, 30), (2, len(trace) - 3)]
        for first, second in pairs:
            plan = {}
            for step in (first, second):
                insn = Machine(image).fetch_decode(trace[step])
                variants = model.variants(insn, None)
                if variants:
                    plan[step] = model.effect(variants[0])
            if plan:
                _assert_identical(image, wl.bad_input,
                                  fault_plan=plan)

    def test_checkpoint_boundaries_stay_exact(self):
        wl = bootloader.workload(rich=True)
        image = wl.build()
        sinks = []
        for jit in (False, True):
            machine = Machine(image, stdin=wl.bad_input)
            if jit:
                TraceCompiler().attach(machine)
            sink = []
            machine.run(checkpoint_interval=16, checkpoint_sink=sink)
            sinks.append([(cp.step, cp.rip, tuple(cp.regs))
                          for cp in sink])
        assert sinks[0] == sinks[1]


SELF_MODIFYING = """
# patches the imm byte of "mov rdi, 42" from inside the same
# superblock; compiled execution must abort, roll back, and let the
# precise stepper re-run the store (exit 43, not 42)
.text
.global _start
_start:
    lea rsi, [rel patch]
    mov al, 43
    mov byte ptr [rsi+3], al
patch:
    mov rdi, 42
    mov rax, 60
    syscall
"""


class TestCoherence:
    def test_self_modifying_block_aborts_and_reruns(self):
        from repro.asm import assemble
        image = assemble(SELF_MODIFYING)

        def machine():
            m = Machine(image)
            # .text assembles r-x; make it writable so the guest
            # store is legal and the abort path (not a crash) runs
            m.memory.map(m.cpu.rip & ~0xFFF, 0x1000, "rwx")
            return m

        precise = machine()
        assert precise.run().exit_code == 43
        compiled = machine()
        compiler = TraceCompiler().attach(compiled)
        result = compiled.run()
        assert result.exit_code == 43
        assert compiler.divergences >= 1

    def test_poke_into_code_evicts_compiled_block(self):
        image = corpus.build("exit42")
        warm = Machine(image)
        compiler = TraceCompiler().attach(warm)
        entry = warm.cpu.rip
        assert warm.run().exit_code == 42  # compiles the entry block
        machine = Machine(image)
        compiler.attach(machine)  # pristine blocks survive the rebind
        target = entry + machine.fetch_decode(entry).length
        machine.memory.poke(target + 3, b"\x2b")
        assert machine.run().exit_code == 43  # stale block would be 42

    def test_restore_keeps_pristine_blocks(self):
        wl = bootloader.workload(rich=True)
        machine = Machine(wl.build(), stdin=wl.bad_input)
        compiler = TraceCompiler().attach(machine)
        sink = []
        machine.run(checkpoint_interval=32, checkpoint_sink=sink)
        compiled = compiler.compiled_blocks
        assert compiled > 0
        machine.restore_checkpoint(sink[0])
        # nothing wrote executable pages, so no block was evicted
        assert compiler.compiled_blocks == compiled
        assert len(compiler._blocks) > 0


class TestSuperblockCarving:
    def test_carve_stops_at_syscall(self):
        machine = Machine(corpus.build("exit42"))
        body, terminator = carve(machine, machine.cpu.rip)
        assert [insn.name for insn in body] == ["mov", "mov"]
        assert terminator is None

    def test_carve_compiles_direct_terminators(self):
        machine = Machine(corpus.build("infinite_loop"))
        body, terminator = carve(machine, machine.cpu.rip)
        assert body == []
        assert terminator is not None and terminator.name == "jmp"

    def test_carve_respects_max_body(self):
        source = [".text", ".global _start", "_start:"]
        source += ["    inc rax"] * (MAX_BODY + 10)
        source += ["    mov rax, 60", "    syscall"]
        from repro.asm import assemble
        machine = Machine(assemble("\n".join(source)))
        body, terminator = carve(machine, machine.cpu.rip)
        assert len(body) == MAX_BODY
        assert terminator is None


class TestInlineFlagReplay:
    """The open-coded flag expansions match flagops bit-for-bit.

    Promised by the codegen docstring: every inline expansion is a
    literal transcription of the matching ``Flags.set_*`` method,
    checked here on randomized operands at every width.
    """

    WIDTHS = (8, 32, 64)

    def _run_inline(self, kind, values, bits, flags):
        emitter = _Emitter()
        lines = _inline_flags(
            emitter, kind, [repr(v) for v in values], bits)
        assert lines is not None
        source = "def replay(flags):\n" + "".join(
            f"    {line}\n" for line in lines)
        namespace = {"_PT": PARITY_TABLE}
        exec(source, namespace)
        namespace["replay"](flags)

    def _check(self, kind, values, bits, reference):
        for initial_cf in (False, True):
            expect = Flags()
            expect.cf = initial_cf
            reference(expect)
            actual = Flags()
            actual.cf = initial_cf
            self._run_inline(kind, values, bits, actual)
            got = tuple(getattr(actual, n) for n in FLAG_NAMES)
            want = tuple(getattr(expect, n) for n in FLAG_NAMES)
            assert got == want, (kind, values, bits, got, want)

    def test_randomized_against_flagops(self):
        rng = random.Random(20260808)
        for bits in self.WIDTHS:
            mask = (1 << bits) - 1
            samples = [0, 1, mask, mask >> 1, (mask >> 1) + 1] + [
                rng.randrange(mask + 1) for _ in range(40)]
            for a in samples:
                b = rng.randrange(mask + 1)
                self._check("add", (a, b), bits,
                            lambda f: f.set_add(a, b, bits))
                self._check("sub", (a, b), bits,
                            lambda f: f.set_sub(a, b, bits))
                self._check("imul", (a, b), bits,
                            lambda f: f.set_imul(a, b, bits))
                self._check("logic", (a & b,), bits,
                            lambda f: f.set_logic_result(a & b, bits))
                self._check("inc", (a,), bits,
                            lambda f: f.set_inc(a, bits))
                self._check("dec", (a,), bits,
                            lambda f: f.set_dec(a, bits))
                self._check("neg", (a,), bits,
                            lambda f: f.set_neg(a, bits))

    def test_randomized_constant_shifts(self):
        rng = random.Random(99)
        for bits in self.WIDTHS:
            mask = (1 << bits) - 1
            counts = [1, 2, bits - 1, bits, bits + 1, 63]
            counts = sorted({c & (0x3F if bits == 64 else 0x1F)
                             for c in counts} - {0})
            for count in counts:
                for _ in range(20):
                    a = rng.randrange(mask + 1)
                    self._check("shl", (a, count), bits,
                                lambda f: f.set_shl(a, count, bits))
                    self._check("shr", (a, count), bits,
                                lambda f: f.set_shr(a, count, bits))
                    self._check("sar", (a, count), bits,
                                lambda f: f.set_sar(a, count, bits))
