"""Fine-grained CPU semantics: sub-registers, addressing, faults."""

import pytest

from repro.asm import assemble
from repro.emu import Machine, run_executable
from repro.emu.cpu import CPU
from repro.emu.memory import Memory
from repro.isa import reg
from repro.isa.decoder import decode


def run_source(source, stdin=b"", max_steps=10_000):
    return run_executable(assemble(source), stdin=stdin,
                          max_steps=max_steps)


class TestSubRegisters:
    def test_32bit_write_zeroes_upper(self):
        result = run_source("""
        .text
        .global _start
        _start:
            movabs rbx, 0xffffffffffffffff
            mov ebx, 5              # upper 32 bits must clear
            mov rdi, rbx
            mov rax, 60
            syscall
        """)
        assert result.exit_code == 5

    def test_8bit_write_preserves_upper(self):
        result = run_source("""
        .text
        .global _start
        _start:
            mov rbx, 0x1200
            mov bl, 0x34            # keeps bit 8..63
            shr rbx, 8
            mov rdi, rbx
            mov rax, 60
            syscall
        """)
        assert result.exit_code == 0x12

    def test_cpu_read_write_views(self):
        cpu = CPU(Memory())
        cpu.write_reg(reg("rax"), 0x1122334455667788)
        assert cpu.read_reg(reg("eax")) == 0x55667788
        assert cpu.read_reg(reg("al")) == 0x88
        cpu.write_reg(reg("al"), 0xFF)
        assert cpu.read_reg(reg("rax")) == 0x11223344556677FF


class TestAddressing:
    def test_scaled_index(self):
        result = run_source("""
        .text
        .global _start
        _start:
            lea rsi, [rel table]
            mov rcx, 2
            mov rdi, qword ptr [rsi+rcx*8]
            mov rax, 60
            syscall
        .data
        table: .quad 10, 20, 30, 40
        """)
        assert result.exit_code == 30

    def test_rip_relative_is_position_of_next_insn(self):
        exe = assemble("""
        .text
        .global _start
        _start:
            mov rdi, qword ptr [rel value]
            mov rax, 60
            syscall
        .data
        value: .quad 9
        """)
        machine = Machine(exe)
        insn = machine.fetch_decode(exe.entry)
        target = insn.end_address + insn.operands[1].disp
        assert target == exe.symbol("value").value

    def test_negative_displacement(self):
        result = run_source("""
        .text
        .global _start
        _start:
            lea rsi, [rel anchor]
            mov rdi, qword ptr [rsi-8]
            mov rax, 60
            syscall
        .data
        before: .quad 17
        anchor: .quad 0
        """)
        assert result.exit_code == 17


class TestStack:
    def test_push_imm_sign_extends(self):
        result = run_source("""
        .text
        .global _start
        _start:
            push -1
            pop rbx
            mov rdi, 0
            cmp rbx, -1
            jne bad
            mov rdi, 1
        bad:
            mov rax, 60
            syscall
        """)
        assert result.exit_code == 1

    def test_red_zone_survives(self):
        # write below rsp, shift rsp into the red zone, read back
        result = run_source("""
        .text
        .global _start
        _start:
            mov qword ptr [rsp-64], 33
            lea rsp, [rsp-128]
            mov rdi, qword ptr [rsp+64]
            lea rsp, [rsp+128]
            mov rax, 60
            syscall
        """)
        assert result.exit_code == 33


class TestCmov:
    def test_cmov_taken_and_not_taken(self):
        result = run_source("""
        .text
        .global _start
        _start:
            mov rdi, 1
            mov rbx, 9
            cmp rbx, 9
            cmove rdi, rbx      # taken -> rdi = 9
            mov rcx, 50
            cmp rbx, 0
            cmove rdi, rcx      # not taken
            mov rax, 60
            syscall
        """)
        assert result.exit_code == 9


class TestFaultRealism:
    def test_bitflip_can_change_instruction_length(self):
        """A flip that turns one instruction into a longer one consumes
        following bytes — execution continues at the new boundary."""
        exe = assemble("""
        .text
        .global _start
        _start:
            nop
            nop
            mov rax, 60
            mov rdi, 7
            syscall
        """)
        machine = Machine(exe)

        def flip_to_longer(insn, cpu):
            raw = bytearray(cpu.memory.fetch(insn.address, 15))
            raw[0] = 0x48  # REX prefix swallows the next byte
            return decode(bytes(raw), 0, insn.address)

        result = machine.run(fault_step=0,
                             fault_intercept=flip_to_longer)
        # either still exits (resynced) or crashes; never hangs
        assert result.reason in ("exit", "crash")

    def test_undecodable_flip_crashes(self):
        exe = assemble("""
        .text
        .global _start
        _start:
            mov rax, 60
            mov rdi, 0
            syscall
        """)
        machine = Machine(exe)

        def clobber(insn, cpu):
            from repro.isa.decoder import decode as dec
            return dec(b"\x06" + bytes(14), 0, insn.address)

        result = machine.run(fault_step=0, fault_intercept=clobber)
        assert result.reason == "crash"
        assert "invalid opcode" in result.crash_detail

    def test_imul_and_movzx(self):
        result = run_source("""
        .text
        .global _start
        _start:
            mov rbx, -3
            imul rbx, rbx        # 9
            mov byte ptr [rel scratch], 200
            movzx rdi, byte ptr [rel scratch]
            add rdi, rbx         # 209
            mov rax, 60
            syscall
        .data
        scratch: .byte 0
        """)
        assert result.exit_code == 209
