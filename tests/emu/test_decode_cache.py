"""Decode-cache coherence under code mutation.

The satellite bugfix: a write landing in an executable page — an
injected memory fault or a self-modifying store — must evict the
overlapping cached decodes, a journal rollback must re-evict what it
restores, and checkpoint restores must not resurrect stale decodes.
"""

from repro.emu import Machine
from repro.emu.effects import MemoryBitFlipEffect
from repro.workloads import corpus, pincheck

EXIT42_IMM_OFFSET = 3  # mov rdi, 42 = 48 c7 c7 2a 00 00 00


def _machine():
    return Machine(corpus.build("exit42"))


def _mov_rdi_address(machine):
    """Address of the ``mov rdi, 42`` (second instruction)."""
    entry = machine.cpu.rip
    return entry + machine.fetch_decode(entry).length


class TestExecWriteEviction:
    def test_poke_into_code_evicts_stale_decode(self):
        machine = _machine()
        address = _mov_rdi_address(machine)
        cached = machine.fetch_decode(address)  # warm the cache
        assert cached.operands[1].value == 42
        machine.memory.poke(address + EXIT42_IMM_OFFSET, b"\x2b")
        result = machine.run()
        assert result.exit_code == 43  # stale decode would exit 42

    def test_unrelated_poke_keeps_cache(self):
        machine = _machine()
        address = _mov_rdi_address(machine)
        cached = machine.fetch_decode(address)
        machine.memory.poke(address + 16, b"\x90")
        assert machine._decode_cache[address] is cached

    def test_rollback_re_evicts_and_restores(self):
        machine = _machine()
        address = _mov_rdi_address(machine)
        machine.fetch_decode(address)
        machine.memory.journal_begin()
        machine.memory.poke(address + EXIT42_IMM_OFFSET, b"\x2b")
        assert machine.fetch_decode(address).operands[1].value == 43
        machine.memory.journal_rollback()
        # the corrupted decode cached after the poke must not survive
        assert machine.fetch_decode(address).operands[1].value == 42
        assert machine.run().exit_code == 42

    def test_data_writes_do_not_pay_the_eviction_cost(self):
        """Guest stores to non-executable pages never invoke the
        hook-side eviction (the common path stays allocation-free)."""
        wl = pincheck.workload()
        machine = Machine(wl.build(), stdin=wl.bad_input)
        evictions = []
        original = machine._on_exec_write
        machine.memory.exec_write_hook = \
            lambda a, s: (evictions.append(a), original(a, s))
        machine.run()
        assert evictions == []
        assert machine._code_dirty is False


class TestCheckpointCoherence:
    def test_checkpoint_restore_drops_dirty_code_decodes(self):
        """Restore to a pre-corruption checkpoint must re-decode the
        original bytes even though the corrupt decode was cached."""
        machine = _machine()
        address = _mov_rdi_address(machine)
        cp = machine.checkpoint(0)
        machine.memory.poke(address + EXIT42_IMM_OFFSET, b"\x2b")
        assert machine.fetch_decode(address).operands[1].value == 43
        machine.restore_checkpoint(cp)
        assert machine.fetch_decode(address).operands[1].value == 42
        assert machine.run().exit_code == 42

    def test_clean_machines_keep_cache_across_restores(self):
        machine = _machine()
        address = _mov_rdi_address(machine)
        cached = machine.fetch_decode(address)
        cp = machine.checkpoint(0)
        machine.restore_checkpoint(cp)
        assert machine._decode_cache[address] is cached


class TestMemBitFlipOnCode:
    def test_code_targeting_mem_fault_executes_fresh_decode(self):
        """A mem-bitflip whose effective address lands in .text (e.g.
        RIP-relative data placed in code) goes through poke and hence
        the eviction hook — the faulted run executes the corrupted
        bytes, not the pre-fault decode."""
        machine = _machine()
        address = _mov_rdi_address(machine)
        machine.fetch_decode(address)
        # hand-build an effect equivalent: flip imm bit 0 -> 43
        machine.memory.journal_begin()
        machine.memory.poke(address + EXIT42_IMM_OFFSET, b"\x2b")
        faulted = machine.run(max_steps=16)
        assert faulted.exit_code == 43
        machine.memory.journal_rollback()

    def test_effect_is_noop_without_memory_operand(self):
        machine = _machine()
        insn = machine.fetch_decode(machine.cpu.rip)  # mov rax, 60
        before = machine.memory.peek(machine.cpu.rip, 8)
        MemoryBitFlipEffect(0, 0).mutate(machine, insn)
        assert machine.memory.peek(machine.cpu.rip, 8) == before
