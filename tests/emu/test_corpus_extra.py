"""Extended corpus programs: emulator + rewriting round trips."""

import pytest

from repro.disasm import disassemble, reassemble
from repro.emu import run_executable
from repro.workloads import corpus

EXPECTED = {
    "shifts_by_cl": 40,
    "unary_ops": 10,
    "push_mem": 21,
    "jump_table": 5,
    "byte_loop": 44,
}


class TestExtendedCorpus:
    @pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()))
    def test_emulation(self, name, expected):
        assert run_executable(corpus.build(name)).exit_code == expected

    @pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()))
    def test_reassembly_roundtrip(self, name, expected):
        rebuilt = reassemble(disassemble(corpus.build(name)))
        assert run_executable(rebuilt).exit_code == expected

    @pytest.mark.parametrize("name", ["shifts_by_cl", "unary_ops",
                                      "byte_loop"])
    def test_lift_lower_roundtrip(self, name):
        from repro.lower import lower_executable
        exe = corpus.build(name)
        lowered = lower_executable(exe)
        assert run_executable(lowered).exit_code == \
            run_executable(exe).exit_code

    def test_jump_table_not_liftable(self):
        """Indirect jumps are a documented lifter limitation."""
        from repro.errors import LiftError
        from repro.lift import Lifter
        with pytest.raises(LiftError, match="indirect"):
            Lifter(corpus.build("jump_table")).lift()
