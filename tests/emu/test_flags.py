"""Property tests for RFLAGS semantics against a reference model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.emu.flagops import Flags
from repro.isa.cond import Cond


def u(bits):
    return st.integers(0, (1 << bits) - 1)


WIDTHS = st.sampled_from([8, 32, 64])


class TestAddSub:
    @given(u(64), u(64), WIDTHS)
    @settings(max_examples=300)
    def test_add_reference(self, a, b, bits):
        mask = (1 << bits) - 1
        a &= mask
        b &= mask
        flags = Flags()
        result = flags.set_add(a, b, bits)
        assert result == (a + b) & mask
        assert flags.cf == (a + b > mask)
        assert flags.zf == (result == 0)
        assert flags.sf == bool(result >> (bits - 1))
        # signed overflow reference
        sa = a - (1 << bits) if a >> (bits - 1) else a
        sb = b - (1 << bits) if b >> (bits - 1) else b
        total = sa + sb
        overflowed = not (-(1 << (bits - 1)) <= total
                          < (1 << (bits - 1)))
        assert flags.of == overflowed

    @given(u(64), u(64), WIDTHS)
    @settings(max_examples=300)
    def test_sub_reference(self, a, b, bits):
        mask = (1 << bits) - 1
        a &= mask
        b &= mask
        flags = Flags()
        result = flags.set_sub(a, b, bits)
        assert result == (a - b) & mask
        assert flags.cf == (a < b)
        assert flags.zf == (a == b)
        sa = a - (1 << bits) if a >> (bits - 1) else a
        sb = b - (1 << bits) if b >> (bits - 1) else b
        diff = sa - sb
        overflowed = not (-(1 << (bits - 1)) <= diff
                          < (1 << (bits - 1)))
        assert flags.of == overflowed

    @given(u(64), WIDTHS)
    @settings(max_examples=100)
    def test_inc_preserves_cf(self, a, bits):
        a &= (1 << bits) - 1
        for carry in (False, True):
            flags = Flags()
            flags.cf = carry
            flags.set_inc(a, bits)
            assert flags.cf == carry

    @given(u(64), WIDTHS)
    @settings(max_examples=100)
    def test_neg(self, a, bits):
        a &= (1 << bits) - 1
        flags = Flags()
        result = flags.set_neg(a, bits)
        assert result == (-a) & ((1 << bits) - 1)
        assert flags.cf == (a != 0)


class TestShifts:
    @given(u(64), st.integers(1, 63))
    @settings(max_examples=200)
    def test_shl_carry_is_last_bit_out(self, a, count):
        flags = Flags()
        result = flags.set_shl(a, count, 64)
        assert result == (a << count) & ((1 << 64) - 1)
        assert flags.cf == bool((a >> (64 - count)) & 1)

    @given(u(64), st.integers(1, 63))
    @settings(max_examples=200)
    def test_shr_carry(self, a, count):
        flags = Flags()
        result = flags.set_shr(a, count, 64)
        assert result == a >> count
        assert flags.cf == bool((a >> (count - 1)) & 1)

    @given(u(64), st.integers(1, 63))
    @settings(max_examples=200)
    def test_sar_sign_fills(self, a, count):
        flags = Flags()
        result = flags.set_sar(a, count, 64)
        signed = a - (1 << 64) if a >> 63 else a
        assert result == (signed >> count) & ((1 << 64) - 1)

    @given(u(64))
    def test_zero_count_is_noop(self, a):
        flags = Flags()
        flags.zf = True
        assert flags.set_shl(a, 0, 64) == a
        assert flags.zf  # flags untouched


class TestRflagsImage:
    @given(st.booleans(), st.booleans(), st.booleans(), st.booleans(),
           st.booleans(), st.booleans())
    def test_roundtrip(self, cf, pf, af, zf, sf, of):
        flags = Flags()
        flags.cf, flags.pf, flags.af = cf, pf, af
        flags.zf, flags.sf, flags.of = zf, sf, of
        image = flags.to_rflags()
        assert image & 0x2  # reserved bit always set
        other = Flags()
        other.from_rflags(image)
        for name in ("cf", "pf", "af", "zf", "sf", "of"):
            assert getattr(other, name) == getattr(flags, name)

    def test_parity_of_low_byte_only(self):
        flags = Flags()
        flags.set_logic_result(0x1FF00, 32)  # low byte 0x00: even parity
        assert flags.pf


class TestCondEvaluation:
    @given(u(64), u(64))
    @settings(max_examples=300)
    def test_conditions_match_comparison_semantics(self, a, b):
        flags = Flags()
        flags.set_sub(a, b, 64)
        sa = a - (1 << 64) if a >> 63 else a
        sb = b - (1 << 64) if b >> 63 else b
        assert Cond.E.evaluate(flags) == (a == b)
        assert Cond.NE.evaluate(flags) == (a != b)
        assert Cond.B.evaluate(flags) == (a < b)
        assert Cond.AE.evaluate(flags) == (a >= b)
        assert Cond.A.evaluate(flags) == (a > b)
        assert Cond.BE.evaluate(flags) == (a <= b)
        assert Cond.L.evaluate(flags) == (sa < sb)
        assert Cond.GE.evaluate(flags) == (sa >= sb)
        assert Cond.G.evaluate(flags) == (sa > sb)
        assert Cond.LE.evaluate(flags) == (sa <= sb)

    @given(st.sampled_from(list(Cond)), u(64), u(64))
    @settings(max_examples=200)
    def test_inversion_is_complement(self, cond, a, b):
        flags = Flags()
        flags.set_sub(a, b, 64)
        assert cond.evaluate(flags) != cond.inverted.evaluate(flags)
