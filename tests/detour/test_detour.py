"""Patch-based detour rewriter tests."""

import pytest

from repro.asm import assemble
from repro.detour import DetourRewriter
from repro.detour.rewriter import duplicate_with_detours
from repro.emu import run_executable
from repro.isa.decoder import decode
from repro.isa.insn import Mnemonic
from repro.workloads import bootloader, corpus, pincheck


class TestInstrument:
    def test_single_patch_preserves_behavior(self):
        exe = corpus.build("arith")
        rewriter = DetourRewriter(exe)
        # patch the first instruction (mov rax, 3 -- 7 bytes)
        assert rewriter.instrument(exe.entry, lambda displaced: [])
        patched = rewriter.finish()
        assert run_executable(patched).exit_code == 52

    def test_patch_point_becomes_jmp(self):
        exe = corpus.build("arith")
        rewriter = DetourRewriter(exe)
        rewriter.instrument(exe.entry, lambda displaced: [])
        patched = rewriter.finish()
        text = patched.section(".text")
        insn = decode(text.data, 0, text.addr)
        assert insn.mnemonic is Mnemonic.JMP
        assert insn.branch_target() == rewriter.trampoline_base

    def test_trampoline_section_added(self):
        exe = corpus.build("arith")
        rewriter = DetourRewriter(exe)
        rewriter.instrument(exe.entry, lambda displaced: [])
        patched = rewriter.finish()
        detour = patched.section(".detour")
        assert detour.executable
        assert len(detour.data) > 0
        # original data sections untouched (the scheme's selling point)
        assert not patched.has_section(".data") or \
            patched.section(".data").addr == exe.section(".data").addr

    def test_refuses_overlapping_patch(self):
        exe = corpus.build("arith")
        rewriter = DetourRewriter(exe)
        assert rewriter.instrument(exe.entry, lambda displaced: [])
        assert not rewriter.instrument(exe.entry,
                                       lambda displaced: [])
        assert rewriter.stats.refused == 1

    def test_refuses_branch_into_window(self):
        source = """
        .text
        .global _start
        _start:
            mov rbx, 1
            nop
        target:
            nop
            nop
            nop
            jmp target
        """
        exe = assemble(source)
        rewriter = DetourRewriter(exe)
        # patching the nop@+7 would swallow 'target'
        nop_addr = exe.symbol("target").value - 1
        assert not rewriter.instrument(nop_addr, lambda d: [])

    def test_rip_relative_rebased(self):
        source = """
        .text
        .global _start
        _start:
            mov rdi, qword ptr [rel value]
            mov rax, 60
            syscall
        .data
        value: .quad 23
        """
        exe = assemble(source)
        rewriter = DetourRewriter(exe)
        assert rewriter.instrument(exe.entry, lambda d: [])
        patched = rewriter.finish()
        assert run_executable(patched).exit_code == 23


class TestDuplicateWithDetours:
    @pytest.mark.parametrize("name", ["exit42", "arith", "memwrites"])
    def test_corpus_behavior_preserved(self, name):
        exe = corpus.build(name)
        baseline = run_executable(exe, stdin=b"abcd")
        patched, stats = duplicate_with_detours(exe)
        result = run_executable(patched, stdin=b"abcd")
        assert baseline.behavior() == result.behavior()
        assert stats.patched > 0

    def test_case_studies(self):
        for wl in (pincheck.workload(), bootloader.workload()):
            exe = wl.build()
            patched, _ = duplicate_with_detours(exe)
            good = run_executable(patched, stdin=wl.good_input)
            bad = run_executable(patched, stdin=wl.bad_input)
            assert wl.grant_marker in good.stdout
            assert wl.grant_marker not in bad.stdout

    def test_performance_degradation_measurable(self):
        """The paper's Section III-B claim: detouring costs control
        transfers at every patch point."""
        wl = pincheck.workload()
        exe = wl.build()
        baseline = run_executable(exe, stdin=wl.good_input)
        patched, stats = duplicate_with_detours(exe)
        result = run_executable(patched, stdin=wl.good_input)
        assert result.steps >= baseline.steps + 2 * 2  # >=2 dynamic hits

    def test_skip_protection_works(self):
        """Skipping one copy of a detour-duplicated mov is harmless."""
        from repro.emu import Machine
        source = """
        .text
        .global _start
        _start:
            mov rdi, qword ptr [rel value]
            mov rax, 60
            syscall
        .data
        value: .quad 7
        """
        exe = assemble(source)
        patched, stats = duplicate_with_detours(exe)
        assert stats.patched >= 1
        machine = Machine(patched)
        trace = machine.run(record_trace=True).trace
        # find the duplicated loads in the trampoline and skip the first
        detour_steps = [i for i, a in enumerate(trace)
                        if a >= patched.section(".detour").addr]
        target = detour_steps[0]
        result = Machine(patched).run(
            fault_step=target, fault_intercept=lambda i, c: None)
        assert result.exit_code == 7  # second copy healed the skip
