"""Detour rewriter edge cases: decode resync, window boundaries,
RIP-relative re-encoding, repeated instrumentation, provenance."""

from repro.asm import assemble
from repro.detour import DetourRewriter
from repro.emu import run_executable
from repro.isa.decoder import decode
from repro.provenance import KIND_DERIVED, KIND_INSN

# a data blob in .text whose bytes fail to decode at the blob start
# but, when (wrongly) resumed one byte in, decode as `jmp rel32`
# targeting the middle of the instruction at `entry` — the phantom
# branch target that used to refuse the detour below
DATA_BLOB_SOURCE = """
.text
.global _start
_start:
    jmp entry
blob:
    .byte 0x06, 0xE9, 0x02, 0x00, 0x00, 0x00
entry:
    mov rax, 60
    mov rdi, 7
    syscall
"""


class TestDecodeResync:
    def test_data_blob_does_not_mint_phantom_targets(self):
        exe = assemble(DATA_BLOB_SOURCE)
        entry = exe.symbol("entry").value
        rewriter = DetourRewriter(exe)
        # the phantom jmp would target entry+2, inside the window of
        # the 7-byte `mov rax, 60`; lockstep decoding resynchronizes
        # at the `entry` symbol boundary instead
        assert entry + 2 not in rewriter._branch_targets
        assert rewriter.instrument(entry, lambda displaced: [])
        assert run_executable(rewriter.finish()).exit_code == 7

    def test_real_targets_still_collected_after_blob(self):
        exe = assemble(DATA_BLOB_SOURCE)
        rewriter = DetourRewriter(exe)
        # the jump over the blob is a real branch target
        assert exe.symbol("entry").value in rewriter._branch_targets

    def test_undecodable_tail_without_boundary_terminates(self):
        source = """
        .text
        .global _start
        _start:
            mov rax, 60
            mov rdi, 3
            syscall
            .byte 0x06, 0x06, 0x06
        """
        exe = assemble(source)
        rewriter = DetourRewriter(exe)  # must not raise or loop
        assert rewriter.instrument(exe.entry, lambda displaced: [])
        assert run_executable(rewriter.finish()).exit_code == 3

    STRIPPED_SOURCE = """
    .text
    .global _start
    _start:
        jmp entry
    blob:
        .byte 0x06
    entry:
        mov bl, 5
    loop_top:
        cmp bl, 5
        jne loop_top
        movzx rdi, bl
        mov rax, 60
        syscall
    """

    def test_stripped_binary_keeps_real_targets_after_blob(self):
        """Without symbol boundaries the walk must fall back to the
        conservative slide — dropping real branch targets located
        behind a blob would let an unsafe detour through."""
        with_symbols = assemble(self.STRIPPED_SOURCE)
        exe = with_symbols.stripped()
        rewriter = DetourRewriter(exe)
        # `jne loop_top` sits *after* the undecodable blob; with no
        # boundary to resync at, only the byte-wise slide reaches it
        loop_top = with_symbols.symbol("loop_top").value
        assert loop_top in rewriter._branch_targets
        # and the overlap check therefore still refuses a window
        # swallowing that target
        entry = with_symbols.symbol("entry").value
        assert not rewriter.instrument(entry, lambda displaced: [])


class TestWindowBoundary:
    SOURCE = """
    .text
    .global _start
    _start:
        mov rbx, 7
    after:
        cmp rbx, 0
        je after
        mov rdi, rbx
        mov rax, 60
        syscall
    """

    def test_branch_target_exactly_at_window_end_is_legal(self):
        exe = assemble(self.SOURCE)
        rewriter = DetourRewriter(exe)
        after = exe.symbol("after").value
        # window [_start, after): 7-byte mov; `je after` lands exactly
        # on the resume point, which the patch preserves
        assert after == exe.entry + 7
        assert rewriter.instrument(exe.entry, lambda displaced: [])
        assert run_executable(rewriter.finish()).exit_code == 7

    def test_branch_target_strictly_inside_window_refused(self):
        exe = assemble(self.SOURCE)
        rewriter = DetourRewriter(exe)
        after = exe.symbol("after").value
        # `after` would sit strictly inside the window of the cmp+je
        # pair (cmp is 4 bytes: the window must extend into je)
        assert not rewriter.instrument(after, lambda displaced: [])
        assert rewriter.stats.refused == 1


RIP_SOURCE = """
.text
.global _start
_start:
    mov rdi, qword ptr [rel value]
    mov rax, 60
    syscall
.data
value: .quad 23
"""


class TestRipRelativeReencode:
    def test_duplicated_rip_relative_load(self):
        """Both trampoline copies re-encode at distinct addresses and
        must still reference the same absolute target."""
        exe = assemble(RIP_SOURCE)
        rewriter = DetourRewriter(exe)
        assert rewriter.instrument(exe.entry,
                                   lambda displaced: [displaced[0]])
        patched = rewriter.finish()
        assert run_executable(patched).exit_code == 23

        value = exe.symbol("value").value
        detour = patched.section(".detour")
        offset = 0
        targets = []
        for _ in range(2):  # duplicate + displaced original
            insn = decode(detour.data, offset, detour.addr + offset)
            mem = insn.operands[1]
            assert mem.is_rip_relative
            targets.append(insn.address + insn.length + mem.disp)
            offset += insn.length
        assert targets == [value, value]

    def test_reencode_at_rebases_displacement(self):
        exe = assemble(RIP_SOURCE)
        rewriter = DetourRewriter(exe)
        insn = decode(exe.section(".text").data, 0, exe.entry)
        code = rewriter._reencode_at(insn, 0x500000)
        rebased = decode(code, 0, 0x500000)
        target = rebased.address + rebased.length \
            + rebased.operands[1].disp
        assert target == exe.symbol("value").value


class TestRepeatedInstrument:
    def test_double_instrument_of_patched_range_refused(self):
        exe = assemble(RIP_SOURCE)
        rewriter = DetourRewriter(exe)
        assert rewriter.instrument(exe.entry, lambda displaced: [])
        # anywhere inside the already-patched window is refused, not
        # just its first byte
        for offset in range(1, 5):
            assert not rewriter.instrument(exe.entry + offset,
                                           lambda displaced: [])
        assert rewriter.stats.refused == 4
        assert rewriter.stats.patched == 1
        assert run_executable(rewriter.finish()).exit_code == 23


class TestDetourProvenance:
    def test_displaced_and_derived_mappings(self):
        exe = assemble(RIP_SOURCE)
        rewriter = DetourRewriter(exe)
        rewriter.instrument(exe.entry, lambda displaced: [displaced[0]])
        provenance = rewriter.provenance
        duplicate, original = [
            entry for entry in provenance.entries
            if entry.original == exe.entry]
        assert duplicate.kind == KIND_DERIVED
        assert original.kind == KIND_INSN
        assert duplicate.rewritten == rewriter.trampoline_base
        assert provenance.to_original(original.rewritten) == exe.entry

    def test_untouched_text_maps_identically(self):
        exe = assemble(RIP_SOURCE)
        rewriter = DetourRewriter(exe)
        rewriter.instrument(exe.entry, lambda displaced: [])
        untouched = exe.entry + 8  # the `mov rax, 60` after the window
        assert rewriter.provenance.to_original(untouched) == untouched

    def test_trampoline_jump_back_is_unmapped(self):
        exe = assemble(RIP_SOURCE)
        rewriter = DetourRewriter(exe)
        rewriter.instrument(exe.entry, lambda displaced: [])
        jump_back = rewriter.trampoline_base \
            + len(rewriter.trampoline) - 5
        assert rewriter.provenance.to_original(jump_back) is None
