"""Faulter-guided branch filter (metadata-based) and degenerate-input
guards for the hybrid result rollups."""

import warnings

import pytest

from repro.errors import RewriteError
from repro.hybrid.pipeline import (
    GuidedBranchFilter,
    HybridResult,
    faulter_guided_filter,
    hybrid_harden,
)
from repro.lift.lifter import Lifter
from repro.workloads import pincheck


@pytest.fixture(scope="module")
def wl():
    return pincheck.workload()


class TestGuidedBranchFilter:
    def test_matches_on_block_metadata_not_names(self, wl):
        """Renaming every lifted block must not disable the filter —
        the historical name-parsing bug silently hardened nothing."""
        exe = wl.build()
        branch_filter = faulter_guided_filter(
            exe, wl.good_input, wl.bad_input, wl.grant_marker)
        assert branch_filter.vulnerable_blocks

        ir_module = Lifter(exe).lift()
        flagged = []
        for block in ir_module.function("entry").blocks:
            block.name = f"renamed_{block.name}"  # no g<hex> prefix
            if block.guest_address in branch_filter.vulnerable_blocks:
                flagged.append(block)
        assert flagged
        assert branch_filter(flagged[0], None) is True
        assert branch_filter.matched == {flagged[0].guest_address}

    def test_blocks_without_metadata_are_skipped(self):
        branch_filter = GuidedBranchFilter({0x1000})

        class Bare:
            pass

        assert branch_filter(Bare(), None) is False

    def test_guided_hybrid_hardens_vulnerable_branch(self, wl):
        exe = wl.build()
        branch_filter = faulter_guided_filter(
            exe, wl.good_input, wl.bad_input, wl.grant_marker)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no unmatched-block warning
            result = hybrid_harden(
                exe, wl.good_input, wl.bad_input, wl.grant_marker,
                branch_filter=branch_filter)
        assert result.hardening.branches_hardened >= 1
        assert not branch_filter.unmatched()

    def test_warns_when_flagged_block_never_reached(self, wl):
        exe = wl.build()
        branch_filter = GuidedBranchFilter({0xDEAD_BEEF})
        with pytest.warns(UserWarning, match="0xdeadbeef"):
            result = hybrid_harden(
                exe, wl.good_input, wl.bad_input, wl.grant_marker,
                branch_filter=branch_filter)
        assert result.hardening.branches_hardened == 0

    def test_warns_when_point_maps_to_no_block(self, wl, monkeypatch):
        from repro.gtirb.ir import Module

        def no_block(self, address):
            raise RewriteError(f"no instruction at {address:#x}")

        monkeypatch.setattr(Module, "find_instruction", no_block)
        with pytest.warns(UserWarning, match="maps to no guest block"):
            branch_filter = faulter_guided_filter(
                wl.build(), wl.good_input, wl.bad_input,
                wl.grant_marker)
        assert not branch_filter.vulnerable_blocks


class TestOverheadGuards:
    def _result(self, original, hardened, lowered):
        return HybridResult(
            hardened=None,
            lowered_unhardened=None,
            original_text_size=original,
            hardened_text_size=hardened,
            unhardened_lowered_size=lowered,
        )

    def test_empty_text_overheads_are_zero(self):
        result = self._result(0, 128, 64)
        assert result.overhead_percent == 0.0
        assert result.translation_overhead_percent == 0.0
        assert result.to_dict()["overhead_percent"] == 0.0

    def test_normal_overheads_unchanged(self):
        result = self._result(100, 250, 150)
        assert result.overhead_percent == 150.0
        assert result.translation_overhead_percent == 50.0
