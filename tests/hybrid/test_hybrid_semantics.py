"""Property test: the full hybrid pipeline preserves semantics.

Random compare-and-branch programs across condition codes and operand
values go through lift -> harden -> lower; the hardened executable must
agree with the original on observable behaviour.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.asm import assemble
from repro.emu import run_executable
from repro.hybrid import harden_branches
from repro.ir.passes.pass_manager import standard_cleanup
from repro.lift import Lifter
from repro.lower.pipeline import lower_module

# jp/jnp are outside the lifter subset
CONDS = ["e", "ne", "b", "ae", "a", "be", "s", "ns", "l", "ge",
         "le", "g"]


@given(st.integers(0, 255), st.integers(0, 255),
       st.sampled_from(CONDS))
@settings(max_examples=25, deadline=None)
def test_hardened_branch_semantics(a, b, suffix):
    source = f"""
    .text
    .global _start
    _start:
        xor rax, rax
        xor rdi, rdi
        lea rsi, [rel buf]
        mov rdx, 2
        syscall
        movzx rbx, byte ptr [rel buf]
        movzx rcx, byte ptr [rel buf+1]
        cmp rbx, rcx
        j{suffix} taken
        mov rdi, 1
        mov rax, 60
        syscall
    taken:
        mov rdi, 2
        mov rax, 60
        syscall
    .bss
    buf: .zero 8
    """
    exe = assemble(source)
    stdin = bytes([a, b])
    want = run_executable(exe, stdin=stdin).exit_code

    ir = Lifter(exe).lift()
    standard_cleanup().run(ir)
    stats = harden_branches(ir)
    assert stats.branches_hardened >= 1
    hardened = lower_module(ir, exe, trap_after_jmp=True)
    got = run_executable(hardened, stdin=stdin).exit_code
    assert got == want, (f"cond j{suffix} with ({a}, {b}): "
                         f"original {want}, hardened {got}")
