"""Hybrid approach tests: the hardening pass, pipeline, duplication."""

import pytest

from repro.asm import assemble
from repro.emu import run_executable
from repro.hybrid import (
    BranchHardening, duplicate_everything, harden_branches, hybrid_harden)
from repro.ir import Interpreter, verify
from repro.ir.instructions import CondBr, Switch
from repro.ir.passes.pass_manager import standard_cleanup
from repro.lift import Lifter
from repro.lift.lifter import guest_memory
from repro.workloads import bootloader, corpus, pincheck

BRANCHY = """
.text
.global _start
_start:
    xor rax, rax
    xor rdi, rdi
    lea rsi, [rel buf]
    mov rdx, 1
    syscall
    movzx rbx, byte ptr [buf]
    cmp rbx, 65
    je yes
    mov rdi, 2
    mov rax, 60
    syscall
yes:
    mov rdi, 1
    mov rax, 60
    syscall
.bss
buf: .zero 8
"""


def lifted(exe):
    ir = Lifter(exe).lift()
    standard_cleanup().run(ir)
    return ir


class TestBranchHardeningPass:
    def test_behaviour_preserved_in_interpreter(self):
        exe = assemble(BRANCHY)
        ir = lifted(exe)
        harden_branches(ir)
        verify(ir)
        for stdin, expected in ((b"A", 1), (b"B", 2)):
            result = Interpreter(guest_memory(exe), stdin=stdin).run(
                ir.function("entry"))
            assert result.exit_code == expected

    def test_uids_are_distinct_and_nonzero(self):
        ir = lifted(assemble(BRANCHY))
        hardening = BranchHardening()
        hardening.run(ir)
        uids = list(hardening.stats.uids.values())
        assert len(set(uids)) == len(uids)
        assert all(uid != 0 for uid in uids)
        assert all(uid < (1 << 31) for uid in uids)

    def test_validation_structure(self):
        ir = lifted(assemble(BRANCHY))
        stats = harden_branches(ir)
        fn = ir.function("entry")
        switches = [i for i in fn.instructions()
                    if isinstance(i, Switch)]
        assert len(switches) == 4 * stats.branches_hardened
        assert stats.validation_blocks == 4 * stats.branches_hardened
        assert stats.fault_response_blocks == \
            2 * stats.branches_hardened

    def test_checksum_algebra(self):
        """The mask construction must select constT when the condition
        is true and constF when false, for any UIDs."""
        import random
        random.seed(7)
        for _ in range(50):
            uid_s, uid_t, uid_f = (random.getrandbits(31) or 1
                                   for _ in range(3))
            for cond in (0, 1):
                mask = (cond - 1) & ((1 << 64) - 1)
                const_t = uid_t ^ uid_s
                const_f = uid_f ^ uid_s
                checksum = ((~mask & const_t) | (mask & const_f)) \
                    & ((1 << 64) - 1)
                assert checksum == (const_t if cond else const_f)

    def test_branch_filter(self):
        ir = lifted(assemble(BRANCHY))
        stats = harden_branches(ir,
                                branch_filter=lambda b, t: False)
        assert stats.branches_hardened == 0
        ir2 = lifted(assemble(BRANCHY))
        stats2 = harden_branches(ir2)
        assert stats2.branches_hardened >= 1

    def test_pass_is_reentrant_on_new_functions(self):
        hardening = BranchHardening()
        for _ in range(2):
            ir = lifted(assemble(BRANCHY))
            hardening.run(ir)
            verify(ir)


class TestHybridPipeline:
    def test_pincheck_end_to_end(self):
        wl = pincheck.workload()
        result = hybrid_harden(wl.build(), wl.good_input, wl.bad_input,
                               wl.grant_marker, name=wl.name)
        good = run_executable(result.hardened, stdin=wl.good_input)
        bad = run_executable(result.hardened, stdin=wl.bad_input)
        assert wl.grant_marker in good.stdout
        assert wl.grant_marker not in bad.stdout
        assert result.overhead_percent > \
            result.translation_overhead_percent

    def test_skip_campaign_clean(self):
        wl = bootloader.workload()
        result = hybrid_harden(wl.build(), wl.good_input, wl.bad_input,
                               wl.grant_marker, name=wl.name,
                               models=("skip",))
        assert not result.final_reports["skip"].vulnerable

    def test_histograms_recorded(self):
        wl = pincheck.workload()
        result = hybrid_harden(wl.build(), wl.good_input, wl.bad_input,
                               wl.grant_marker, name=wl.name)
        delta = result.ir_histogram_after - result.ir_histogram_before
        assert delta["switch"] == 4 * result.hardening.branches_hardened

    def test_report_renders(self):
        wl = pincheck.workload()
        result = hybrid_harden(wl.build(), wl.good_input, wl.bad_input,
                               wl.grant_marker, name=wl.name)
        text = result.report()
        assert "Hybrid hardening report" in text
        assert "lift+lower alone" in text


class TestDuplicationBaseline:
    def test_overhead_at_least_triple(self):
        from repro.disasm import disassemble, reassemble
        wl = pincheck.workload()
        exe = wl.build()
        module = disassemble(exe)
        stats = duplicate_everything(module)
        rebuilt = reassemble(module)
        overhead = (rebuilt.code_size() - exe.code_size()) \
            / exe.code_size()
        assert overhead >= 3.0
        assert stats.duplicated > 0

    def test_duplicated_binary_behaviour(self):
        from repro.disasm import disassemble, reassemble
        wl = bootloader.workload()
        module = disassemble(wl.build())
        duplicate_everything(module)
        rebuilt = reassemble(module)
        good = run_executable(rebuilt, stdin=wl.good_input)
        assert wl.grant_marker in good.stdout

    def test_duplication_detects_skip_of_duplicable_mov(self):
        from repro.disasm import disassemble, reassemble
        source = """
        .text
        .global _start
        _start:
            mov rbx, qword ptr [value]
            mov rdi, rbx
            mov rax, 60
            syscall
        .data
        value: .quad 7
        """
        module = disassemble(assemble(source))
        duplicate_everything(module)
        rebuilt = reassemble(module)
        from repro.emu import Machine
        result = Machine(rebuilt).run(
            fault_step=0, fault_intercept=lambda insn, cpu: None)
        # either detected (42) or self-healed by the duplicate (7)
        assert result.exit_code in (7, 42)
