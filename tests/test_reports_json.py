"""JSON serialization of hardening results."""

import json

import pytest

from repro.api import harden_binary
from repro.workloads import pincheck


@pytest.fixture(scope="module")
def wl():
    return pincheck.workload()


class TestJsonExport:
    def test_faulter_patcher_to_dict(self, wl):
        result = harden_binary(wl.build(), wl.good_input, wl.bad_input,
                               wl.grant_marker,
                               approach="faulter+patcher",
                               fault_models=("skip",))
        payload = result.to_dict()
        text = json.dumps(payload)  # must be JSON-safe
        decoded = json.loads(text)
        assert decoded["approach"] == "faulter+patcher"
        assert decoded["converged"] is True
        assert decoded["final_reports"]["skip"]["model"] == "skip"
        assert decoded["iterations"][0]["patched"] >= 1

    def test_hybrid_to_dict(self, wl):
        result = harden_binary(wl.build(), wl.good_input, wl.bad_input,
                               wl.grant_marker, approach="hybrid",
                               fault_models=("skip",))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["approach"] == "hybrid"
        assert payload["branches_hardened"] >= 1
        assert payload["overhead_percent"] > \
            payload["translation_overhead_percent"]
        assert payload["ir_delta"]["switch"] == \
            4 * payload["branches_hardened"]

    def test_campaign_report_to_dict(self, wl):
        from repro.faulter import Faulter
        report = Faulter(wl.build(), wl.good_input, wl.bad_input,
                         wl.grant_marker).run_campaign("skip")
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["trace_length"] == report.trace_length
        assert payload["vulnerable_points"][0]["mnemonic"] == "cmp"
