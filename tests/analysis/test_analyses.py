"""Dataflow analyses over recovered modules."""

import pytest

from repro.analysis import (
    DefUse, FlagLiveness, RegisterLiveness, RegisterValueAnalysis)
from repro.asm import assemble
from repro.disasm import disassemble
from repro.isa.insn import Mnemonic
from repro.isa.registers import reg


def module_of(source):
    return disassemble(assemble(source))


FLAGS_PROGRAM = """
.text
.global _start
_start:
    mov rbx, 5
    cmp rbx, 5          # flags live until the jcc
    mov rdx, 1          # mov does not kill flags
    je yes
    mov rdi, 0
    jmp done
yes:
    mov rdi, 1
done:
    mov rax, 60
    syscall
"""


class TestFlagLiveness:
    def test_live_between_cmp_and_jcc(self):
        module = module_of(FLAGS_PROGRAM)
        liveness = FlagLiveness(module)
        block = module.text().code_blocks()[0]
        cmp_index = next(i for i, e in enumerate(block.entries)
                         if e.insn.mnemonic is Mnemonic.CMP)
        assert liveness.live_after(block, cmp_index)

    def test_dead_after_consuming_branch(self):
        module = module_of(FLAGS_PROGRAM)
        liveness = FlagLiveness(module)
        # in the 'yes' block nothing reads flags before the exit
        yes_block = module.symbol("yes").referent
        assert not liveness.live_in(yes_block)

    def test_dead_before_writer(self):
        source = """
        .text
        .global _start
        _start:
            mov rbx, 1      # flags dead here: cmp below rewrites them
            cmp rbx, 1
            je out
        out:
            mov rax, 60
            mov rdi, 0
            syscall
        """
        module = module_of(source)
        liveness = FlagLiveness(module)
        block = module.text().code_blocks()[0]
        assert not liveness.live_after(block, 0)


class TestRegisterLiveness:
    def test_dead_register_is_reported(self):
        source = """
        .text
        .global _start
        _start:
            mov rbx, 7
            mov rdi, rbx
            mov rax, 60
            syscall
        """
        module = module_of(source)
        liveness = RegisterLiveness(module)
        block = module.text().code_blocks()[0]
        # after the last use of rbx it is dead
        dead = liveness.dead_after(block, 1)
        assert reg("rbx") in dead
        # but alive right after its definition
        assert reg("rbx") in liveness.live_after(block, 0)

    def test_loop_keeps_counter_alive(self):
        from repro.workloads import pincheck
        module = disassemble(pincheck.build())
        liveness = RegisterLiveness(module)
        loop_block = next(
            b for b in module.text().code_blocks()
            if any(e.insn.mnemonic is Mnemonic.INC for e in b.entries))
        inc_index = next(i for i, e in enumerate(loop_block.entries)
                         if e.insn.mnemonic is Mnemonic.INC)
        assert reg("rcx") in liveness.live_after(loop_block, inc_index)


class TestRegisterValues:
    def test_constant_propagation(self):
        source = """
        .text
        .global _start
        _start:
            mov rbx, 40
            add rbx, 2
            xor rcx, rcx
            mov rdi, rbx
            mov rax, 60
            syscall
        """
        module = module_of(source)
        analysis = RegisterValueAnalysis(module)
        block = module.text().code_blocks()[0]
        assert analysis.value_before(block, 2, reg("rbx")) == 42
        assert analysis.value_before(block, 4, reg("rcx")) == 0

    def test_join_kills_disagreeing_values(self):
        source = """
        .text
        .global _start
        _start:
            mov rbx, 1
            cmp rbx, 1
            je other
            mov rbx, 2
            jmp merge
        other:
            mov rbx, 3
merge:
            mov rdi, rbx
            mov rax, 60
            syscall
        """
        module = module_of(source)
        analysis = RegisterValueAnalysis(module)
        merge_block = module.symbol("merge").referent
        assert analysis.value_before(merge_block, 0, reg("rbx")) is None


class TestDefUse:
    def test_def_reaches_use(self):
        source = """
        .text
        .global _start
        _start:
            mov rbx, 7
            mov rdi, rbx
            mov rax, 60
            syscall
        """
        module = module_of(source)
        defuse = DefUse(module)
        block = module.text().code_blocks()[0]
        defs = defuse.defs_reaching(block, 1, reg("rbx"))
        assert len(defs) == 1
        assert defs[0].index == 0
        uses = defuse.uses_of(defs[0])
        assert (block.uid, 1) in uses

    def test_branch_merges_definitions(self):
        source = """
        .text
        .global _start
        _start:
            mov rbx, 1
            cmp rbx, 1
            jne alt
            mov rbx, 2
            jmp merge
        alt:
            mov rbx, 3
merge:
            mov rdi, rbx
            mov rax, 60
            syscall
        """
        module = module_of(source)
        defuse = DefUse(module)
        merge_block = module.symbol("merge").referent
        defs = defuse.defs_reaching(merge_block, 0, reg("rbx"))
        assert len(defs) == 2
