"""CSE pass unit tests, including the volatile-duplicate contract."""

import pytest

from repro.ir import (
    Constant, Function, FunctionType, I64, IRBuilder, Interpreter,
    verify)
from repro.ir.passes import cse, dce, instruction_histogram
from repro.ir.types import VOID


def fn_with_entry():
    fn = Function("f", FunctionType("void", ()))
    return fn, fn.add_block("entry")


def exit_with(b, value):
    b.call(VOID, "syscall", [b.i64(60), value, b.i64(0), b.i64(0)])
    b.unreachable()


class TestBasicCSE:
    def test_merges_identical_binops(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        base = b.call(I64, "syscall", [b.i64(39), b.i64(0), b.i64(0),
                                       b.i64(0)], "pid")  # opaque value
        x = b.add(base, b.i64(5))
        y = b.add(base, b.i64(5))
        total = b.add(x, y)
        exit_with(b, total)
        assert cse(fn)
        dce(fn)
        verify(fn)
        assert instruction_histogram(fn)["add"] == 2  # x reused, 1 sum

    def test_commutative_matching(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        base = b.call(I64, "syscall", [b.i64(39), b.i64(0), b.i64(0),
                                       b.i64(0)], "v")
        x = b.add(base, b.i64(3))
        y = b.add(Constant(I64, 3), base)  # commuted
        exit_with(b, b.add(x, y))
        assert cse(fn)

    def test_constants_compared_by_value(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        x = b.xor(Constant(I64, 10), Constant(I64, 3))
        y = b.xor(Constant(I64, 10), Constant(I64, 3))  # fresh objects
        exit_with(b, b.add(x, y))
        assert cse(fn)
        dce(fn)
        assert instruction_histogram(fn)["xor"] == 1

    def test_loads_not_merged_across_stores(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        pointer = b.inttoptr(b.i64(0x5000))
        first = b.load(I64, pointer)
        b.store(b.i64(99), pointer)
        second = b.load(I64, pointer)  # different memory epoch
        exit_with(b, b.add(first, second))
        changed = cse(fn)
        histogram = instruction_histogram(fn)
        assert histogram["load"] == 2  # must NOT merge

    def test_loads_merged_within_epoch(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        pointer = b.inttoptr(b.i64(0x5000))
        first = b.load(I64, pointer)
        second = b.load(I64, pointer)
        exit_with(b, b.add(first, second))
        assert cse(fn)
        dce(fn)
        assert instruction_histogram(fn)["load"] == 1

    def test_semantics_preserved(self):
        from repro.emu.memory import Memory
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        pointer = b.inttoptr(b.i64(0x5000))
        x = b.load(I64, pointer)
        y = b.load(I64, pointer)
        exit_with(b, b.add(x, y))
        memory = Memory()
        memory.load(0x5000, (21).to_bytes(8, "little"), "rw")
        before = Interpreter(memory).run(fn).exit_code
        cse(fn)
        dce(fn)
        memory2 = Memory()
        memory2.load(0x5000, (21).to_bytes(8, "little"), "rw")
        after = Interpreter(memory2).run(fn).exit_code
        assert before == after == 42


class TestVolatileContract:
    def test_no_merge_respected(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        x = b.xor(Constant(I64, 10), Constant(I64, 3))
        y = b.xor(Constant(I64, 10), Constant(I64, 3))
        y.no_merge = True
        exit_with(b, b.add(x, y))
        cse(fn)
        assert instruction_histogram(fn)["xor"] == 2

    def test_no_merge_ignorable_for_ablation(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        x = b.xor(Constant(I64, 10), Constant(I64, 3))
        y = b.xor(Constant(I64, 10), Constant(I64, 3))
        y.no_merge = True
        exit_with(b, b.add(x, y))
        cse(fn, respect_no_merge=False)
        dce(fn)
        assert instruction_histogram(fn)["xor"] == 1

    def test_hardening_marks_its_instructions(self):
        from repro.asm import assemble
        from repro.hybrid import harden_branches
        from repro.ir.passes.pass_manager import standard_cleanup
        from repro.lift import Lifter
        source = """
        .text
        .global _start
        _start:
            xor rax, rax
            xor rdi, rdi
            lea rsi, [rel buf]
            mov rdx, 8
            syscall
            mov rbx, qword ptr [buf]   # opaque: survives constfold
            cmp rbx, 1
            je a
            mov rdi, 1
        a:
            mov rax, 60
            syscall
        .bss
        buf: .zero 8
        """
        ir = Lifter(assemble(source)).lift()
        standard_cleanup().run(ir)
        harden_branches(ir)
        fn = ir.function("entry")
        marked = [i for i in fn.instructions()
                  if getattr(i, "no_merge", False)]
        assert len(marked) >= 12  # two checksum chains + C2 clone
