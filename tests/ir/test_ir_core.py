"""IR construction, verification, printing, interpretation."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Constant, Function, FunctionType, I1, I64, IRBuilder, IRModule,
    Interpreter, verify, print_function,
)
from repro.ir.passes import (
    constant_fold, dce, instruction_histogram, mem2reg, simplify_cfg)
from repro.ir.passes.pass_manager import standard_cleanup


def make_function(name="f"):
    function = Function(name, FunctionType("void", ()))
    return function


class TestConstruction:
    def test_simple_arith_runs(self):
        fn = make_function()
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        x = b.add(b.i64(40), b.i64(2))
        b.call("void" and __import__("repro.ir.types",
                                     fromlist=["VOID"]).VOID,
               "syscall", [b.i64(60), x, b.i64(0), b.i64(0)])
        b.unreachable()
        verify(fn)
        result = Interpreter().run(fn)
        assert result.exit_code == 42

    def test_verifier_catches_missing_terminator(self):
        fn = make_function()
        entry = fn.add_block("entry")
        IRBuilder(entry).add(Constant(I64, 1), Constant(I64, 2))
        with pytest.raises(IRError):
            verify(fn)

    def test_verifier_catches_dominance_violation(self):
        fn = make_function()
        entry = fn.add_block("entry")
        other = fn.add_block("other")
        exit_block = fn.add_block("exit")
        b = IRBuilder(entry)
        b.condbr(b.icmp("eq", b.i64(1), b.i64(1)), other, exit_block)
        b.set_block(other)
        value = b.add(b.i64(1), b.i64(2))
        b.br(exit_block)
        b.set_block(exit_block)
        b.add(value, b.i64(3))  # value does not dominate here
        b.ret()
        with pytest.raises(IRError):
            verify(fn)

    def test_use_def_tracking(self):
        fn = make_function()
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        x = b.add(b.i64(1), b.i64(2))
        y = b.add(x, x)
        b.ret()
        assert y in x.users
        replacement = b.i64(3)
        x.replace_all_uses_with(replacement)
        assert y.operands == (replacement, replacement)
        assert not x.uses


class TestControlFlow:
    def build_branchy(self, cond_value):
        fn = make_function()
        entry = fn.add_block("entry")
        then = fn.add_block("then")
        other = fn.add_block("else")
        join = fn.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("ult", b.i64(cond_value), b.i64(10))
        b.condbr(cond, then, other)
        b.set_block(then)
        b.br(join)
        b.set_block(other)
        b.br(join)
        b.set_block(join)
        phi = b.phi(I64)
        phi.add_incoming(b.i64(1), then)
        phi.add_incoming(b.i64(2), other)
        from repro.ir.types import VOID
        b.call(VOID, "syscall", [b.i64(60), phi, b.i64(0), b.i64(0)])
        b.unreachable()
        verify(fn)
        return fn

    def test_phi_both_arms(self):
        assert Interpreter().run(self.build_branchy(5)).exit_code == 1
        assert Interpreter().run(self.build_branchy(50)).exit_code == 2

    def test_switch(self):
        from repro.ir.types import VOID
        fn = make_function()
        entry = fn.add_block("entry")
        cases = [fn.add_block(f"case{i}") for i in range(3)]
        b = IRBuilder(entry)
        sw = b.switch(b.i64(2), cases[0])
        sw.add_case(b.i64(1), cases[1])
        sw.add_case(b.i64(2), cases[2])
        for i, block in enumerate(cases):
            b.set_block(block)
            b.call(VOID, "syscall", [b.i64(60), b.i64(i), b.i64(0),
                                     b.i64(0)])
            b.unreachable()
        verify(fn)
        assert Interpreter().run(fn).exit_code == 2


class TestPasses:
    def test_mem2reg_promotes(self):
        from repro.ir.types import VOID
        fn = make_function()
        entry = fn.add_block("entry")
        loop = fn.add_block("loop")
        done = fn.add_block("done")
        b = IRBuilder(entry)
        slot = b.alloca(I64, "x")
        b.store(b.i64(0), slot)
        b.br(loop)
        b.set_block(loop)
        current = b.load(I64, slot)
        bumped = b.add(current, b.i64(3))
        b.store(bumped, slot)
        cond = b.icmp("ult", bumped, b.i64(12))
        b.condbr(cond, loop, done)
        b.set_block(done)
        final = b.load(I64, slot)
        b.call(VOID, "syscall", [b.i64(60), final, b.i64(0), b.i64(0)])
        b.unreachable()
        verify(fn)
        before = Interpreter().run(fn).exit_code

        assert mem2reg(fn)
        verify(fn)
        histogram = instruction_histogram(fn)
        assert histogram.get("alloca", 0) == 0
        assert histogram.get("load", 0) == 0
        assert histogram.get("phi", 0) >= 1
        assert Interpreter().run(fn).exit_code == before == 12

    def test_constfold_and_dce(self):
        fn = make_function()
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        x = b.add(b.i64(2), b.i64(3))
        y = b.mul(x, b.i64(4))
        b.add(y, b.i64(1))  # dead
        from repro.ir.types import VOID
        b.call(VOID, "syscall", [b.i64(60), y, b.i64(0), b.i64(0)])
        b.unreachable()
        assert constant_fold(fn)
        dce(fn)  # constfold may have already erased the dead add
        verify(fn)
        assert instruction_histogram(fn).get("add", 0) == 0
        assert Interpreter().run(fn).exit_code == 20

    def test_simplifycfg_merges_and_prunes(self):
        from repro.ir.types import VOID
        fn = make_function()
        entry = fn.add_block("entry")
        mid = fn.add_block("mid")
        dead = fn.add_block("dead")
        b = IRBuilder(entry)
        b.condbr(b.const(I1, 1), mid, dead)
        b.set_block(mid)
        b.call(VOID, "syscall", [b.i64(60), b.i64(9), b.i64(0), b.i64(0)])
        b.unreachable()
        b.set_block(dead)
        b.ret()
        assert constant_fold(fn) or True
        assert simplify_cfg(fn)
        verify(fn)
        assert len(fn.blocks) == 1
        assert Interpreter().run(fn).exit_code == 9

    def test_standard_cleanup_pipeline(self):
        from repro.ir.types import VOID
        fn = make_function()
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        slot = b.alloca(I64)
        b.store(b.i64(5), slot)
        value = b.load(I64, slot)
        b.call(VOID, "syscall", [b.i64(60), value, b.i64(0), b.i64(0)])
        b.unreachable()
        standard_cleanup().run(fn)
        verify(fn)
        assert Interpreter().run(fn).exit_code == 5


class TestPrinter:
    def test_prints_parse_worthy_text(self):
        fn = make_function("demo")
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        x = b.add(b.i64(1), b.i64(2), "x")
        b.icmp("eq", x, b.i64(3), "c")
        b.ret()
        text = print_function(fn)
        assert "define" in text
        assert "add i64 1, 2" in text
        assert "icmp eq i64" in text
