"""Interpreter edge cases and error paths."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Constant, Function, FunctionType, I1, I8, I64, IRBuilder,
    Interpreter, verify)
from repro.ir.types import VOID


def fn_with_entry():
    fn = Function("f", FunctionType("void", ()))
    return fn, fn.add_block("entry")


def exit_with(b, value):
    b.call(VOID, "syscall", [b.i64(60), value, b.i64(0), b.i64(0)])
    b.unreachable()


class TestArithmeticEdges:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", (1 << 64) - 1, 1, 0),          # wraparound
        ("sub", 0, 1, (1 << 64) - 1),
        ("mul", 1 << 63, 2, 0),
        ("shl", 1, 63, 1 << 63),
        ("lshr", 1 << 63, 63, 1),
        ("ashr", 1 << 63, 63, (1 << 64) - 1),  # sign fill
        ("udiv", 7, 2, 3),
        ("urem", 7, 2, 1),
        ("udiv", 7, 0, 0),                     # div-by-zero -> 0
    ])
    def test_binops(self, op, a, b, expected):
        fn, entry = fn_with_entry()
        builder = IRBuilder(entry)
        result = builder.binop(op, Constant(I64, a), Constant(I64, b))
        masked = builder.and_(result, Constant(I64, 0xFF))
        exit_with(builder, masked)
        run = Interpreter().run(fn)
        assert run.exit_code == expected & 0xFF

    def test_i8_wraps(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        total = b.add(Constant(I8, 200), Constant(I8, 100))
        exit_with(b, b.zext(total, I64))
        assert Interpreter().run(fn).exit_code == (300 & 0xFF)

    def test_sext_of_negative(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        wide = b.sext(Constant(I8, -1), I64)
        masked = b.and_(wide, b.i64(0x7F))
        exit_with(b, masked)
        assert Interpreter().run(fn).exit_code == 0x7F


class TestRuntimeErrors:
    def test_unmapped_memory_is_crash(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        pointer = b.inttoptr(b.i64(0xDEAD0000))
        b.load(I64, pointer, "x")
        b.ret()
        result = Interpreter().run(fn)
        assert result.reason == "crash"
        assert "fault" in result.crash_detail

    def test_max_steps(self):
        fn = Function("f", FunctionType("void", ()))
        entry = fn.add_block("entry")
        loop = fn.add_block("loop")
        b = IRBuilder(entry)
        b.br(loop)
        b.set_block(loop)
        b.br(loop)
        result = Interpreter().run(fn, max_steps=50)
        assert result.reason == "max-steps"

    def test_abort_intrinsic(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        b.call(VOID, "abort", [])
        b.unreachable()
        result = Interpreter().run(fn)
        assert result.exit_code == 134

    def test_unknown_intrinsic_raises(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        b.call(I64, "frobnicate", [])
        b.ret()
        with pytest.raises(IRError, match="frobnicate"):
            Interpreter().run(fn)

    def test_ret_terminates_cleanly(self):
        fn, entry = fn_with_entry()
        IRBuilder(entry).ret()
        result = Interpreter().run(fn)
        assert result.reason == "exit"
        assert result.exit_code == 0


class TestIO:
    def test_write_to_stderr(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        from repro.emu.memory import Memory
        memory = Memory()
        memory.load(0x5000, b"oops", "rw")
        b.call(I64, "syscall", [b.i64(1), b.i64(2), b.i64(0x5000),
                                b.i64(4)])
        b.ret()
        interp = Interpreter(memory)
        result = interp.run(fn)
        assert result.stderr == b"oops"

    def test_read_consumes_stdin(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        from repro.emu.memory import Memory
        memory = Memory()
        memory.map(0x5000, 0x100, "rw")
        got = b.call(I64, "syscall", [b.i64(0), b.i64(0), b.i64(0x5000),
                                      b.i64(8)], "n")
        exit_with(b, got)
        result = Interpreter(memory, stdin=b"abc").run(fn)
        assert result.exit_code == 3
