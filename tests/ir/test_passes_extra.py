"""Additional pass tests: algebraic folding, CFG cleanup, dominators."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Constant, Function, FunctionType, I1, I64, IRBuilder, Interpreter,
    verify)
from repro.ir.instructions import Br, Phi
from repro.ir.passes import constant_fold, dce, simplify_cfg
from repro.ir.verifier import dominators


def fn_with_entry(name="f"):
    fn = Function(name, FunctionType("void", ()))
    return fn, fn.add_block("entry")


class TestAlgebraicFolding:
    def exit_with(self, builder, value):
        from repro.ir.types import VOID
        builder.call(VOID, "syscall",
                     [builder.i64(60), value, builder.i64(0),
                      builder.i64(0)])
        builder.unreachable()

    def test_xor_self_is_zero(self):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        unknown = b.add(b.i64(1), b.i64(2))  # placeholder non-constant
        zero = b.xor(unknown, unknown)
        result = b.add(zero, b.i64(11))
        self.exit_with(b, result)
        constant_fold(fn)
        dce(fn)
        verify(fn)
        from repro.ir.passes import instruction_histogram
        assert instruction_histogram(fn).get("xor", 0) == 0
        assert Interpreter().run(fn).exit_code == 11

    @pytest.mark.parametrize("op,rhs,expected", [
        ("add", 0, 7), ("sub", 0, 7), ("or", 0, 7), ("xor", 0, 7),
        ("shl", 0, 7), ("mul", 1, 7), ("mul", 0, 0), ("and", 0, 0),
    ])
    def test_identities(self, op, rhs, expected):
        fn, entry = fn_with_entry()
        b = IRBuilder(entry)
        unknown = b.add(b.i64(3), b.i64(4))  # 7, but folded later
        value = b.binop(op, unknown, b.i64(rhs))
        self.exit_with(b, value)
        constant_fold(fn)
        verify(fn)
        assert Interpreter().run(fn).exit_code == expected


class TestSimplifyCFGWithPhis:
    def test_constant_branch_fixes_phi(self):
        from repro.ir.types import VOID
        fn = Function("f", FunctionType("void", ()))
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        join = fn.add_block("join")
        b = IRBuilder(entry)
        b.condbr(Constant(I1, 1), left, right)
        b.set_block(left)
        b.br(join)
        b.set_block(right)
        b.br(join)
        b.set_block(join)
        phi = b.phi(I64)
        phi.add_incoming(b.i64(4), left)
        phi.add_incoming(b.i64(5), right)
        b.call(VOID, "syscall", [b.i64(60), phi, b.i64(0), b.i64(0)])
        b.unreachable()
        verify(fn)
        simplify_cfg(fn)
        verify(fn)
        assert Interpreter().run(fn).exit_code == 4

    def test_loop_not_merged_away(self):
        from repro.ir.types import VOID
        fn = Function("f", FunctionType("void", ()))
        entry = fn.add_block("entry")
        loop = fn.add_block("loop")
        done = fn.add_block("done")
        b = IRBuilder(entry)
        b.br(loop)
        b.set_block(loop)
        counter = b.phi(I64, "i")
        bumped = b.add(counter, b.i64(1))
        counter.add_incoming(b.i64(0), entry)
        counter.add_incoming(bumped, loop)
        cond = b.icmp("ult", bumped, b.i64(5))
        b.condbr(cond, loop, done)
        b.set_block(done)
        b.call(VOID, "syscall", [b.i64(60), bumped, b.i64(0),
                                 b.i64(0)])
        b.unreachable()
        verify(fn)
        simplify_cfg(fn)
        verify(fn)
        assert Interpreter().run(fn).exit_code == 5


class TestVerifierDiagnostics:
    def test_phi_missing_incoming(self):
        fn = Function("f", FunctionType("void", ()))
        entry = fn.add_block("entry")
        other = fn.add_block("other")
        join = fn.add_block("join")
        b = IRBuilder(entry)
        b.condbr(Constant(I1, 1), other, join)
        b.set_block(other)
        b.br(join)
        b.set_block(join)
        phi = b.phi(I64)
        phi.add_incoming(b.i64(1), other)  # entry edge missing
        b.ret()
        with pytest.raises(IRError, match="phi"):
            verify(fn)

    def test_empty_block_rejected(self):
        fn = Function("f", FunctionType("void", ()))
        entry = fn.add_block("entry")
        IRBuilder(entry).ret()
        fn.add_block("empty")
        with pytest.raises(IRError, match="empty|terminator"):
            verify(fn)


class TestDominators:
    def test_diamond(self):
        fn = Function("f", FunctionType("void", ()))
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        join = fn.add_block("join")
        b = IRBuilder(entry)
        b.condbr(Constant(I1, 1), left, right)
        for block in (left, right):
            b.set_block(block)
            b.br(join)
        b.set_block(join)
        b.ret()
        doms = dominators(fn)
        assert id(entry) in doms[id(join)]
        assert id(left) not in doms[id(join)]
        assert id(entry) in doms[id(left)]
