"""Property test: assembled programs disassemble to the same stream.

Random straight-line instruction sequences (no control flow, so linear
decode is well-defined) are assembled into an executable; decoding the
.text section must yield semantically identical instructions, and the
GTIRB round trip (disassemble -> pretty-print -> reassemble) must
preserve the bytes' behaviour-relevant content.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.asm import assemble
from repro.disasm import disassemble, reassemble
from repro.isa import Imm, Mem, Mnemonic, Reg
from repro.isa.decoder import decode_all
from repro.isa.registers import all_gpr64, sub_register

# straight-line data ops only; operands chosen to be assembly-printable
GPR = [r for r in all_gpr64() if r.name not in ("rsp", "rbp")]


def regs64():
    return st.sampled_from([Reg(r) for r in GPR])


def small_imm():
    return st.builds(Imm, st.integers(-(1 << 31), (1 << 31) - 1),
                     st.just(0))


def mems():
    return st.builds(
        lambda base, disp: Mem(base=base, disp=disp, size=8),
        st.sampled_from(GPR), st.integers(-128, 127))


@st.composite
def straightline(draw):
    kind = draw(st.sampled_from(["alu_rr", "alu_ri", "mov_rm", "mov_mr",
                                 "mov_ri", "lea", "unary", "shift"]))
    alu = st.sampled_from([Mnemonic.ADD, Mnemonic.SUB, Mnemonic.XOR,
                           Mnemonic.AND, Mnemonic.OR, Mnemonic.CMP])
    from repro.isa.insn import insn as mk
    if kind == "alu_rr":
        return mk(draw(alu), draw(regs64()), draw(regs64()))
    if kind == "alu_ri":
        return mk(draw(alu), draw(regs64()), draw(small_imm()))
    if kind == "mov_rm":
        return mk(Mnemonic.MOV, draw(regs64()), draw(mems()))
    if kind == "mov_mr":
        return mk(Mnemonic.MOV, draw(mems()), draw(regs64()))
    if kind == "mov_ri":
        return mk(Mnemonic.MOV, draw(regs64()), draw(small_imm()))
    if kind == "lea":
        return mk(Mnemonic.LEA, draw(regs64()), draw(mems()))
    if kind == "unary":
        mnem = draw(st.sampled_from([Mnemonic.INC, Mnemonic.DEC,
                                     Mnemonic.NEG, Mnemonic.NOT]))
        return mk(mnem, draw(regs64()))
    mnem = draw(st.sampled_from([Mnemonic.SHL, Mnemonic.SHR,
                                 Mnemonic.SAR]))
    return mk(mnem, draw(regs64()), Imm(draw(st.integers(1, 63)), 1))


def render(instruction) -> str:
    from repro.disasm.pprint import render_instruction
    from repro.gtirb.ir import InsnEntry
    return render_instruction(InsnEntry(instruction))


@given(st.lists(straightline(), min_size=1, max_size=12))
@settings(max_examples=120, deadline=None)
def test_assemble_decode_roundtrip(instructions):
    body = "\n".join(f"    {render(i)}" for i in instructions)
    source = (".text\n.global _start\n_start:\n" + body +
              "\n    mov rax, 60\n    mov rdi, 0\n    syscall\n")
    exe = assemble(source)
    text = exe.section(".text")
    decoded = list(decode_all(text.data, text.addr))
    # strip the exit epilogue (3 instructions)
    decoded = decoded[:len(instructions)]
    assert len(decoded) == len(instructions)
    for want, got in zip(instructions, decoded):
        assert want.mnemonic is got.mnemonic
        for a, b in zip(want.operands, got.operands):
            if isinstance(a, Imm):
                assert a.value == b.value
            else:
                assert a == b


@given(st.lists(straightline(), min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_gtirb_roundtrip_preserves_stream(instructions):
    body = "\n".join(f"    {render(i)}" for i in instructions)
    source = (".text\n.global _start\n_start:\n" + body +
              "\n    mov rax, 60\n    mov rdi, 0\n    syscall\n")
    exe = assemble(source)
    rebuilt = reassemble(disassemble(exe))
    original = list(decode_all(exe.section(".text").data, 0))
    regenerated = list(decode_all(rebuilt.section(".text").data, 0))
    assert [i.name for i in original] == [i.name for i in regenerated]
