"""Assembler parser unit tests: syntax, errors, operand forms."""

import pytest

from repro.asm import parse_source
from repro.asm.source import DataStmt, InsnStmt, LabelDef, SpaceStmt
from repro.errors import AsmError
from repro.isa import Imm, Label, Mem, Mnemonic, Reg
from repro.isa.registers import RIP


def first_insn(source, section=".text"):
    program = parse_source(source)
    return next(item.insn for item in program.items(section)
                if isinstance(item, InsnStmt))


class TestComments:
    def test_hash_and_semicolon(self):
        program = parse_source(
            ".text\nstart:  # a comment\n  nop ; trailing\n")
        items = program.items(".text")
        assert isinstance(items[0], LabelDef)
        assert isinstance(items[1], InsnStmt)

    def test_comment_chars_inside_strings(self):
        program = parse_source('.data\nmsg: .ascii "a#b;c"\n')
        stmt = next(i for i in program.items(".data")
                    if isinstance(i, DataStmt))
        assert stmt.parts[0] == b"a#b;c"


class TestOperands:
    def test_memory_forms(self):
        insn = first_insn(".text\n mov rax, qword ptr [rbx+rcx*8-24]\n")
        memop = insn.operands[1]
        assert memop.base.name == "rbx"
        assert memop.index.name == "rcx"
        assert memop.scale == 8
        assert memop.disp == -24

    def test_rel_symbol(self):
        insn = first_insn(".text\n lea rsi, [rel target]\n")
        memop = insn.operands[1]
        assert memop.base is RIP
        assert isinstance(memop.disp, Label)
        assert memop.disp.name == "target"

    def test_absolute_symbol_with_addend(self):
        insn = first_insn(".text\n mov rax, qword ptr [thing+16]\n")
        memop = insn.operands[1]
        assert memop.base is None
        assert memop.disp == Label("thing", 16)

    def test_size_inference_from_register(self):
        insn = first_insn(".text\n mov al, [rsi]\n")
        assert insn.operands[1].size == 1
        insn = first_insn(".text\n mov [rsi], ebx\n")
        assert insn.operands[0].size == 4

    def test_explicit_size_wins(self):
        insn = first_insn(".text\n cmp byte ptr [rsi], 10\n")
        assert insn.operands[0].size == 1

    def test_offset_keyword(self):
        insn = first_insn(".text\n mov rbx, offset thing\n")
        assert insn.operands[1] == Label("thing", 0)

    def test_movabs_forces_imm64(self):
        insn = first_insn(".text\n movabs rax, 5\n")
        assert insn.operands[1] == Imm(5, 8)

    def test_char_and_hex_literals(self):
        insn = first_insn(".text\n cmp al, 'Z'\n")
        assert insn.operands[1].value == 90
        insn = first_insn(".text\n mov rbx, 0xBEEF\n")
        assert insn.operands[1].value == 0xBEEF

    def test_negative_scaled_expression(self):
        program = parse_source(".equ N, 4\n.text\n mov rbx, N*2+1\n")
        insn = next(i.insn for i in program.items(".text")
                    if isinstance(i, InsnStmt))
        assert insn.operands[1].value == 9


class TestDirectives:
    def test_data_values_with_expressions(self):
        program = parse_source(".data\n.equ K, 3\nv: .long K*2, 7\n")
        stmt = next(i for i in program.items(".data")
                    if isinstance(i, DataStmt))
        assert stmt.parts[0] == (6).to_bytes(4, "little")
        assert stmt.parts[1] == (7).to_bytes(4, "little")

    def test_asciz_appends_nul(self):
        program = parse_source('.data\ns: .asciz "hi"\n')
        stmt = next(i for i in program.items(".data")
                    if isinstance(i, DataStmt))
        assert stmt.parts[0] == b"hi\x00"

    def test_escape_sequences(self):
        program = parse_source('.data\ns: .ascii "a\\nb\\x21"\n')
        stmt = next(i for i in program.items(".data")
                    if isinstance(i, DataStmt))
        assert stmt.parts[0] == b"a\nb!"

    def test_space_directive(self):
        program = parse_source(".bss\nbuf: .zero 32\n")
        stmt = next(i for i in program.items(".bss")
                    if isinstance(i, SpaceStmt))
        assert stmt.size == 32

    def test_entry_directive(self):
        program = parse_source(".entry main\n.text\nmain: ret\n")
        assert program.entry == "main"


class TestErrors:
    @pytest.mark.parametrize("source", [
        ".text\n bogus rax\n",                    # unknown mnemonic
        ".text\n mov rax, [rbx\n",                # unterminated bracket
        ".text\n mov byte ptr rax, 1\n",          # size on register
        ".text\n mov rax, [rbx+rcx+rdx+rsi]\n",   # too many registers
        ".equ X, )(\n",                           # bad expression
    ])
    def test_rejects(self, source):
        with pytest.raises(AsmError):
            parse_source(source)

    def test_rsp_index_rejected(self):
        with pytest.raises((AsmError, ValueError)):
            parse_source(".text\n mov rax, [rbx+rsp*2]\n")
