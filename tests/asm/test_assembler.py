"""Assembler + ELF writer/reader integration tests."""

import pytest

from repro.asm import assemble, assemble_to_elf
from repro.binfmt import read_elf
from repro.errors import AsmError, LinkError
from repro.isa import Mnemonic, decode
from repro.isa.decoder import decode_all

HELLO = """
.section .text
.global _start
_start:
    mov rax, 1          # write
    mov rdi, 1
    lea rsi, [rel msg]
    mov rdx, msg_len
    syscall
    mov rax, 60         # exit
    xor rdi, rdi
    syscall
.section .data
msg: .ascii "hi!\\n"
.equ msg_len, 4
"""


class TestBasicAssembly:
    def test_assembles_and_links(self):
        exe = assemble(HELLO)
        text = exe.section(".text")
        assert text.addr == 0x401000
        assert exe.entry == text.addr
        data = exe.section(".data")
        assert data.data == b"hi!\n"

    def test_rip_relative_points_at_msg(self):
        exe = assemble(HELLO)
        text = exe.section(".text")
        instructions = list(decode_all(text.data, text.addr))
        lea = next(i for i in instructions if i.mnemonic is Mnemonic.LEA)
        target = lea.end_address + lea.operands[1].disp
        assert target == exe.symbol("msg").value

    def test_elf_roundtrip(self):
        exe = assemble(HELLO)
        parsed = read_elf(assemble_to_elf(HELLO))
        assert parsed.entry == exe.entry
        assert parsed.section(".text").data == exe.section(".text").data
        assert parsed.section(".data").data == exe.section(".data").data
        assert parsed.symbol("_start").value == exe.symbol("_start").value
        assert parsed.symbol("_start").is_global

    def test_local_labels_not_exported(self):
        source = """
        .text
        .global _start
        _start:
            jmp .loop
        .loop:
            jmp .loop
        """
        exe = assemble(source)
        names = {s.name for s in exe.symbols}
        assert ".loop" not in names
        assert "_start" in names


class TestDirectives:
    def test_quad_pointer_table(self):
        source = """
        .text
        .global _start
        _start:
            ret
        .data
        table: .quad _start, table
        """
        exe = assemble(source)
        data = exe.section(".data").data
        start = int.from_bytes(data[:8], "little")
        self_ptr = int.from_bytes(data[8:16], "little")
        assert start == exe.symbol("_start").value
        assert self_ptr == exe.symbol("table").value

    def test_align(self):
        source = """
        .text
        .global _start
        _start:
            ret
        .data
        a: .byte 1
        .align 8
        b: .byte 2
        """
        exe = assemble(source)
        assert exe.symbol("b").value % 8 == 0

    def test_bss_is_nobits(self):
        source = """
        .text
        .global _start
        _start:
            ret
        .bss
        buf: .zero 64
        """
        exe = assemble(source)
        bss = exe.section(".bss")
        assert bss.nobits
        assert bss.mem_size == 64
        parsed = read_elf(assemble_to_elf(source))
        assert parsed.section(".bss").nobits

    def test_equ_expressions(self):
        source = """
        .equ A, 4
        .equ B, A*2+1
        .text
        .global _start
        _start:
            mov rax, B
            ret
        """
        exe = assemble(source)
        text = exe.section(".text").data
        instruction = decode(text)
        assert instruction.operands[1].value == 9

    def test_char_literal(self):
        source = """
        .text
        .global _start
        _start:
            cmp al, 'A'
            ret
        """
        exe = assemble(source)
        instruction = decode(exe.section(".text").data)
        assert instruction.operands[1].value == ord("A")


class TestErrors:
    def test_undefined_symbol(self):
        with pytest.raises(LinkError):
            assemble(".text\n.global _start\n_start:\n jmp nowhere\n")

    def test_duplicate_label(self):
        with pytest.raises(AsmError):
            assemble(".text\n_start:\n_start:\n ret\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            assemble(".text\n_start:\n frobnicate rax\n")

    def test_missing_entry(self):
        with pytest.raises(LinkError):
            assemble(".text\nmain:\n ret\n")

    def test_symbolic_disp_with_base_rejected(self):
        with pytest.raises(AsmError):
            assemble(".text\n_start:\n mov rax, [rbx+msg]\n ret\n"
                     ".data\nmsg: .byte 1\n")


class TestBranches:
    def test_forward_and_backward(self):
        source = """
        .text
        .global _start
        _start:
            jmp fwd
        back:
            ret
        fwd:
            jmp back
        """
        exe = assemble(source)
        text = exe.section(".text")
        instructions = list(decode_all(text.data, text.addr))
        assert instructions[0].branch_target() == exe.symbol("fwd").value
        assert instructions[-1].branch_target() == exe.symbol("back").value

    def test_call_and_offset(self):
        source = """
        .text
        .global _start
        _start:
            call fn
            mov rbx, offset fn
            ret
        fn:
            ret
        """
        exe = assemble(source)
        text = exe.section(".text")
        instructions = list(decode_all(text.data, text.addr))
        assert instructions[0].branch_target() == exe.symbol("fn").value
        assert instructions[1].operands[1].value == exe.symbol("fn").value
