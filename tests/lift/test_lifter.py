"""Lifter tests: differential equivalence and error handling."""

import pytest

from repro.asm import assemble
from repro.emu import run_executable
from repro.errors import LiftError
from repro.ir import Interpreter, verify
from repro.lift import Lifter, lift_executable
from repro.lift.lifter import guest_memory
from repro.workloads import bootloader, corpus, pincheck


def differential(exe, stdin=b""):
    """Run binary under the emulator and its lifted IR under the
    interpreter; both observable behaviours must match."""
    ir = lift_executable(exe)
    verify(ir)
    emu = run_executable(exe, stdin=stdin)
    interp = Interpreter(guest_memory(exe), stdin=stdin).run(
        ir.function("entry"))
    assert emu.reason == interp.reason
    assert emu.exit_code == interp.exit_code
    assert emu.stdout == interp.stdout
    assert emu.stderr == interp.stderr
    return ir


class TestDifferential:
    @pytest.mark.parametrize("name", ["exit42", "arith", "memwrites",
                                      "call_ret", "setcc_cmov"])
    def test_corpus(self, name):
        differential(corpus.build(name))

    def test_echo(self):
        differential(corpus.build("echo4"), stdin=b"wxyz")

    @pytest.mark.parametrize("stdin_kind", ["good", "bad", "short"])
    def test_pincheck(self, stdin_kind):
        wl = pincheck.workload()
        stdin = {"good": wl.good_input, "bad": wl.bad_input,
                 "short": b"1"}[stdin_kind]
        differential(wl.build(), stdin=stdin)

    @pytest.mark.parametrize("stdin_kind", ["good", "bad"])
    def test_bootloader(self, stdin_kind):
        wl = bootloader.workload()
        stdin = wl.good_input if stdin_kind == "good" else wl.bad_input
        differential(wl.build(), stdin=stdin)

    def test_rich_pincheck(self):
        wl = pincheck.workload(rich=True)
        differential(wl.build(), stdin=wl.good_input)
        differential(wl.build(), stdin=wl.bad_input)


class TestStructure:
    def test_cleanup_promotes_all_state(self):
        ir = lift_executable(corpus.build("arith"))
        from repro.ir.passes import instruction_histogram
        histogram = instruction_histogram(ir.function("entry"))
        assert histogram.get("alloca", 0) == 0

    def test_inlining_duplicates_callee(self):
        # call_ret calls bump twice -> two inlined copies
        ir = Lifter(corpus.build("call_ret")).lift()
        names = [b.name for b in ir.function("entry").blocks]
        inlined = [n for n in names if "_i1_" in n]
        assert len(inlined) >= 2

    def test_entry_address_recorded(self):
        exe = corpus.build("exit42")
        ir = Lifter(exe).lift()
        assert ir.aux["entry_address"] == exe.entry


class TestErrors:
    def test_recursion_rejected(self):
        source = """
        .text
        .global _start
        _start:
            call self
            mov rax, 60
            syscall
        self:
            call self
            ret
        """
        with pytest.raises(LiftError, match="recursi"):
            Lifter(assemble(source)).lift()

    def test_indirect_call_rejected(self):
        with pytest.raises(LiftError, match="indirect"):
            Lifter(corpus.build("indirect")).lift()

    def test_pushfq_rejected(self):
        with pytest.raises(LiftError, match="pushfq|RFLAGS"):
            Lifter(corpus.build("stack_ops")).lift()

    def test_parity_condition_rejected(self):
        source = """
        .text
        .global _start
        _start:
            cmp rax, 1
            jp odd
            mov rdi, 0
        odd:
            mov rax, 60
            syscall
        """
        with pytest.raises(LiftError, match="parity"):
            Lifter(assemble(source)).lift()
