"""Hardening binaries with no symbol table (the paper's scenario:
legacy binaries, lost sources — symbols are a luxury)."""

import pytest

from repro.emu import run_executable
from repro.faulter import Faulter
from repro.patcher import FaulterPatcherLoop
from repro.workloads import bootloader, pincheck


class TestStrippedHardening:
    def test_pincheck_stripped_loop_converges(self):
        wl = pincheck.workload()
        stripped = wl.build().stripped()
        assert stripped.symbols == []
        result = FaulterPatcherLoop(
            stripped, wl.good_input, wl.bad_input, wl.grant_marker,
            models=("skip",), name="stripped-pincheck").run()
        assert result.converged
        good = run_executable(result.hardened, stdin=wl.good_input)
        bad = run_executable(result.hardened, stdin=wl.bad_input)
        assert wl.grant_marker in good.stdout
        assert wl.grant_marker not in bad.stdout

    def test_bootloader_stripped_loop_converges(self):
        wl = bootloader.workload()
        stripped = wl.build().stripped()
        result = FaulterPatcherLoop(
            stripped, wl.good_input, wl.bad_input, wl.grant_marker,
            models=("skip",), name="stripped-bootloader").run()
        assert result.converged

    def test_stripped_hybrid(self):
        from repro.hybrid import hybrid_harden
        wl = pincheck.workload()
        stripped = wl.build().stripped()
        result = hybrid_harden(stripped, wl.good_input, wl.bad_input,
                               wl.grant_marker, name="stripped",
                               models=("skip",))
        assert not result.final_reports["skip"].vulnerable

    def test_campaigns_equal_with_and_without_symbols(self):
        """Symbols are cosmetic: the faulter must find the same faults."""
        wl = pincheck.workload()
        exe = wl.build()
        with_syms = Faulter(exe, wl.good_input, wl.bad_input,
                            wl.grant_marker).run_campaign("skip")
        without = Faulter(exe.stripped(), wl.good_input, wl.bad_input,
                          wl.grant_marker).run_campaign("skip")
        assert with_syms.outcomes == without.outcomes
        assert [f.address for f in with_syms.successes] == \
            [f.address for f in without.successes]


class TestOracle:
    def test_classification_categories(self):
        wl = pincheck.workload()
        faulter = Faulter(wl.build(), wl.good_input, wl.bad_input,
                          wl.grant_marker)
        report = faulter.run_campaign("bitflip",
                                      collect_outcomes=True)
        outcomes = {o.outcome for o in report.all_outcomes}
        assert outcomes == {"success", "crash", "ignored"}

    def test_crash_includes_runaway_execution(self):
        """Faults that cause loops are classified as crashes (the
        paper ignores them)."""
        wl = pincheck.workload()
        faulter = Faulter(wl.build(), wl.good_input, wl.bad_input,
                          wl.grant_marker)
        report = faulter.run_campaign("bitflip")
        assert report.outcomes["crash"] > 0

    def test_grant_marker_definition_of_success(self):
        from repro.emu.machine import RunResult
        wl = pincheck.workload()
        faulter = Faulter(wl.build(), wl.good_input, wl.bad_input,
                          wl.grant_marker)
        granted = RunResult("exit", exit_code=0,
                            stdout=b"ACCESS GRANTED\n")
        denied = RunResult("exit", exit_code=1,
                           stdout=b"ACCESS DENIED\n")
        crashed = RunResult("crash", crash_detail="x")
        assert faulter.classify(granted) == "success"
        assert faulter.classify(denied) == "ignored"
        assert faulter.classify(crashed) == "crash"
        # a crash that still printed the marker counts as success:
        # the privileged operation already happened
        leaky = RunResult("crash", stdout=b"ACCESS GRANTED\n")
        assert faulter.classify(leaky) == "success"
