"""Fig. 2 fixpoint-loop tests (the paper's Section V-C skip results)."""

import pytest

from repro.emu import run_executable
from repro.faulter import Faulter
from repro.patcher import FaulterPatcherLoop
from repro.workloads import bootloader, pincheck


@pytest.fixture(scope="module")
def pincheck_result():
    wl = pincheck.workload()
    loop = FaulterPatcherLoop(wl.build(), wl.good_input, wl.bad_input,
                              wl.grant_marker, models=("skip",),
                              name=wl.name)
    return wl, loop.run()


@pytest.fixture(scope="module")
def bootloader_result():
    wl = bootloader.workload()
    loop = FaulterPatcherLoop(wl.build(), wl.good_input, wl.bad_input,
                              wl.grant_marker, models=("skip",),
                              name=wl.name)
    return wl, loop.run()


class TestSkipConvergence:
    def test_pincheck_converges(self, pincheck_result):
        _, result = pincheck_result
        assert result.converged
        assert result.residual_vulnerabilities()["skip"] == 0

    def test_bootloader_converges(self, bootloader_result):
        _, result = bootloader_result
        assert result.converged
        assert result.residual_vulnerabilities()["skip"] == 0

    def test_behavior_preserved(self, pincheck_result):
        wl, result = pincheck_result
        good = run_executable(result.hardened, stdin=wl.good_input)
        bad = run_executable(result.hardened, stdin=wl.bad_input)
        assert wl.grant_marker in good.stdout
        assert wl.grant_marker not in bad.stdout

    def test_overhead_is_positive_but_bounded(self, pincheck_result):
        _, result = pincheck_result
        assert 0 < result.overhead_percent < 300  # beats naive duplication

    def test_iteration_history_recorded(self, pincheck_result):
        _, result = pincheck_result
        assert len(result.iterations) >= 2
        assert result.iterations[0].patched >= 1
        assert result.iterations[-1].vulnerable_points == 0

    def test_hardened_binary_resists_skip_campaign(self, pincheck_result):
        wl, result = pincheck_result
        faulter = Faulter(result.hardened, wl.good_input, wl.bad_input,
                          wl.grant_marker, name="verify")
        report = faulter.run_campaign("skip")
        assert not report.vulnerable


class TestBitflipReduction:
    def test_bitflip_vulnerabilities_reduced(self):
        """Paper Section V-C: bit-flip vulnerable points reduced ~50%."""
        wl = pincheck.workload()
        exe = wl.build()
        before = Faulter(exe, wl.good_input, wl.bad_input,
                         wl.grant_marker).run_campaign("bitflip")
        loop = FaulterPatcherLoop(exe, wl.good_input, wl.bad_input,
                                  wl.grant_marker,
                                  models=("skip", "bitflip"),
                                  name=wl.name)
        result = loop.run()
        after = result.final_reports["bitflip"]
        # at least half of the originally vulnerable program points are
        # fixed (the paper reports a 50% reduction for this model)
        assert result.site_reduction_percent >= 50.0
        # and the overall success rate must not get worse
        rate_before = before.outcomes["success"] / before.total_faults
        rate_after = (after.outcomes["success"] / after.total_faults
                      if after.total_faults else 0.0)
        assert rate_after <= rate_before
        # behaviour must still be correct
        good = run_executable(result.hardened, stdin=wl.good_input)
        assert wl.grant_marker in good.stdout

    def test_report_renders(self):
        wl = pincheck.workload()
        loop = FaulterPatcherLoop(wl.build(), wl.good_input, wl.bad_input,
                                  wl.grant_marker, models=("skip",))
        result = loop.run()
        text = result.report()
        assert "Faulter+Patcher" in text
        assert "converged: True" in text
