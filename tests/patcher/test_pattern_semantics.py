"""Property tests: protection patterns preserve program semantics.

For randomly generated register/memory values and every condition code,
a patched program must produce exactly the behaviour of the original.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.asm import assemble
from repro.disasm import disassemble, reassemble
from repro.emu import run_executable
from repro.isa.cond import Cond
from repro.isa.insn import Mnemonic
from repro.patcher import Patcher


def patch_all(exe, mnemonics):
    module = disassemble(exe)
    patcher = Patcher(module)
    targets = [
        entry
        for block in module.text().code_blocks()
        for entry in list(block.entries)
        if entry.insn.mnemonic in mnemonics and not entry.protected
    ]
    applied = sum(patcher.patch_entry(e) for e in targets)
    return reassemble(module), applied


@given(st.integers(-100, 100), st.integers(-100, 100),
       st.sampled_from([c for c in Cond if c not in (Cond.P, Cond.NP)]))
@settings(max_examples=60, deadline=None)
def test_jcc_pattern_all_conditions(a, b, cond):
    """cmp a, b; j<cc> — patched and unpatched must agree for every
    condition code and operand signs."""
    source = f"""
    .text
    .global _start
    _start:
        mov rbx, {a}
        mov rcx, {b}
        cmp rbx, rcx
        j{cond.suffix} taken
        mov rdi, 1
        mov rax, 60
        syscall
    taken:
        mov rdi, 2
        mov rax, 60
        syscall
    """
    exe = assemble(source)
    want = run_executable(exe).exit_code
    patched, applied = patch_all(exe, {Mnemonic.JCC})
    assert applied == 1
    assert run_executable(patched).exit_code == want


@given(st.integers(-100, 100), st.integers(-100, 100),
       st.sampled_from(["e", "ne", "b", "ae", "l", "ge"]))
@settings(max_examples=40, deadline=None)
def test_cmp_pattern_preserves_flags(a, b, suffix):
    """The duplicated-compare pattern must leave the original compare's
    flags for the following consumer."""
    source = f"""
    .text
    .global _start
    _start:
        mov rbx, {a}
        mov rcx, {b}
        cmp rbx, rcx
        set{suffix} dil
        movzx rdi, dil
        mov rax, 60
        syscall
    """
    exe = assemble(source)
    want = run_executable(exe).exit_code
    patched, applied = patch_all(exe, {Mnemonic.CMP})
    assert applied == 1
    assert run_executable(patched).exit_code == want


@given(st.integers(0, 255), st.integers(-128, 127))
@settings(max_examples=40, deadline=None)
def test_mov_pattern_random_values(value, disp8):
    source = f"""
    .text
    .global _start
    _start:
        mov rbx, qword ptr [rel value]
        mov rdi, rbx
        and rdi, 0xff
        mov rax, 60
        syscall
    .data
    value: .quad {value}
    """
    exe = assemble(source)
    want = run_executable(exe).exit_code
    patched, applied = patch_all(exe, {Mnemonic.MOV})
    assert applied >= 2
    assert run_executable(patched).exit_code == want == value


class TestFlagSafeMovVariant:
    def test_mov_between_cmp_and_jcc(self):
        """Flags are live across the mov: the patcher must use the
        pushfq-wrapped variant and keep the branch decision intact."""
        source = """
        .text
        .global _start
        _start:
            mov rbx, 5
            cmp rbx, 5              # sets ZF=1
            mov rdx, qword ptr [rel value]   # patched; flags LIVE
            je good
            mov rdi, 1
            mov rax, 60
            syscall
        good:
            mov rdi, qword ptr [rel value]
            mov rax, 60
            syscall
        .data
        value: .quad 0
        """
        exe = assemble(source)
        module = disassemble(exe)
        patcher = Patcher(module)
        target = next(
            e for b in module.text().code_blocks()
            for e in b.entries
            if e.insn.mnemonic is Mnemonic.MOV
            and 1 in e.sym_operands)
        assert patcher.patch_entry(target)
        assert "flags live" in patcher.log[-1].reason
        rebuilt = reassemble(module)
        assert run_executable(rebuilt).exit_code == 0  # je taken

    def test_flag_dead_uses_paper_exact_pattern(self):
        source = """
        .text
        .global _start
        _start:
            mov rdx, qword ptr [rel value]   # flags dead here
            cmp rdx, 1
            je one
            mov rdi, 9
            mov rax, 60
            syscall
        one:
            mov rdi, 1
            mov rax, 60
            syscall
        .data
        value: .quad 1
        """
        exe = assemble(source)
        module = disassemble(exe)
        patcher = Patcher(module)
        target = module.text().code_blocks()[0].entries[0]
        assert patcher.patch_entry(target)
        assert "flags dead" in patcher.log[-1].reason
        rebuilt = reassemble(module)
        assert run_executable(rebuilt).exit_code == 1
