"""Splicing edge cases: block boundaries, symbols, loop limits."""

import pytest

from repro.asm import assemble
from repro.disasm import disassemble, reassemble
from repro.emu import run_executable
from repro.isa.insn import Mnemonic
from repro.patcher import FaulterPatcherLoop, Patcher
from repro.workloads import pincheck


class TestSpliceBoundaries:
    def test_patch_first_instruction_of_labeled_block(self):
        """Symbols pointing at the patched block must stay on it."""
        source = """
        .text
        .global _start
        _start:
            jmp work
        work:
            mov rbx, qword ptr [value]   # first insn of labeled block
            mov rdi, rbx
            mov rax, 60
            syscall
        .data
        value: .quad 6
        """
        exe = assemble(source)
        module = disassemble(exe)
        patcher = Patcher(module)
        work_block = module.symbol("work").referent
        assert patcher.patch_entry(work_block.entries[0])
        # the 'work' symbol must still resolve to executable code: the
        # jmp at _start lands on the pattern's first instruction
        rebuilt = reassemble(module)
        assert run_executable(rebuilt).exit_code == 6

    def test_patch_block_terminator(self):
        """Patching a jcc (last entry) leaves an empty-post split."""
        source = """
        .text
        .global _start
        _start:
            mov rbx, qword ptr [value]
            cmp rbx, 5
            je five
            mov rdi, 1
            mov rax, 60
            syscall
        five:
            mov rdi, 5
            mov rax, 60
            syscall
        .data
        value: .quad 5
        """
        exe = assemble(source)
        module = disassemble(exe)
        patcher = Patcher(module)
        jcc_entry = next(
            e for b in module.text().code_blocks()
            for e in b.entries if e.insn.mnemonic is Mnemonic.JCC)
        assert patcher.patch_entry(jcc_entry)
        rebuilt = reassemble(module)
        assert run_executable(rebuilt).exit_code == 5

    def test_two_patches_same_block(self):
        source = """
        .text
        .global _start
        _start:
            mov rbx, qword ptr [value]
            mov rcx, qword ptr [value]
            mov rdi, rbx
            add rdi, rcx
            mov rax, 60
            syscall
        .data
        value: .quad 4
        """
        exe = assemble(source)
        module = disassemble(exe)
        patcher = Patcher(module)
        movs = [e for b in module.text().code_blocks()
                for e in b.entries
                if e.insn.mnemonic is Mnemonic.MOV and 1 in
                e.sym_operands and not e.protected]
        applied = sum(patcher.patch_entry(e) for e in list(movs)[:2])
        assert applied == 2
        rebuilt = reassemble(module)
        assert run_executable(rebuilt).exit_code == 8


class TestLoopLimits:
    def test_max_iterations_respected(self):
        wl = pincheck.workload()
        loop = FaulterPatcherLoop(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            models=("skip",), max_iterations=1, name=wl.name)
        result = loop.run()
        assert len(result.iterations) == 1
        # one iteration patches but cannot confirm convergence
        assert not result.converged

    def test_loop_with_multiple_models(self):
        wl = pincheck.workload()
        result = FaulterPatcherLoop(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            models=("skip", "stuck0"), name=wl.name).run()
        # behaviour must be intact whatever the convergence outcome
        good = run_executable(result.hardened, stdin=wl.good_input)
        assert wl.grant_marker in good.stdout

    def test_naive_symbolization_loop(self):
        """The loop also works on naive-mode symbolization for
        decoy-free binaries."""
        wl = pincheck.workload()
        result = FaulterPatcherLoop(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            models=("skip",), symbolization="naive",
            name=wl.name).run()
        assert result.converged
