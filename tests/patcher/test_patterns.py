"""Pattern-level tests: each Table I-III pattern in isolation."""

import pytest

from repro.disasm import disassemble, reassemble
from repro.emu import run_executable
from repro.faulter import Faulter
from repro.gtirb.ir import InsnEntry
from repro.isa.insn import Mnemonic
from repro.patcher import Patcher
from repro.workloads import pincheck
from repro.asm import assemble


def harden_instructions(exe, predicate):
    """Disassemble, patch every instruction matching ``predicate``."""
    module = disassemble(exe)
    patcher = Patcher(module)
    targets = [
        entry
        for block in module.text().code_blocks()
        for entry in list(block.entries)
        if predicate(entry)
    ]
    applied = sum(patcher.patch_entry(e) for e in targets)
    return module, patcher, applied


class TestMovPattern:
    SOURCE = """
    .text
    .global _start
    _start:
        mov rax, qword ptr [value]     # protected load
        mov rdi, rax
        mov rax, 60
        syscall
    .data
    value: .quad 7
    """

    def test_protected_load_still_works(self):
        exe = assemble(self.SOURCE)
        module, patcher, applied = harden_instructions(
            exe, lambda e: e.insn.mnemonic is Mnemonic.MOV
            and not e.protected)
        assert applied >= 1
        hardened = reassemble(module)
        result = run_executable(hardened)
        assert result.exit_code == 7

    def test_pattern_adds_faulthandler(self):
        exe = assemble(self.SOURCE)
        module, patcher, _ = harden_instructions(
            exe, lambda e: e.insn.mnemonic is Mnemonic.MOV)
        assert module.has_symbol("fi_faulthandler")
        assert module.has_symbol("fi_fault_msg")

    def test_self_referencing_load_not_patched(self):
        source = """
        .text
        .global _start
        _start:
            lea rax, [rel value]
            mov rax, qword ptr [rax]    # dst is also the base: no pattern
            mov rdi, rax
            mov rax, 60
            syscall
        .data
        value: .quad 3
        """
        exe = assemble(source)
        module = disassemble(exe)
        patcher = Patcher(module)
        _, block, index = module.find_instruction(0x401007)
        entry = block.entries[index]
        assert entry.insn.mnemonic is Mnemonic.MOV
        assert not patcher.patch_entry(entry)


class TestCmpPattern:
    def test_cmp_protection_preserves_semantics(self):
        wl = pincheck.workload()
        exe = wl.build()
        module, patcher, applied = harden_instructions(
            exe, lambda e: e.insn.mnemonic is Mnemonic.CMP)
        assert applied >= 3
        hardened = reassemble(module)
        good = run_executable(hardened, stdin=wl.good_input)
        bad = run_executable(hardened, stdin=wl.bad_input)
        assert wl.grant_marker in good.stdout
        assert b"DENIED" in bad.stdout

    def test_final_flags_match_original(self):
        # flags after the pattern must equal the original compare flags
        source = """
        .text
        .global _start
        _start:
            mov rax, 3
            cmp rax, 5          # patched: CF should survive (3 < 5)
            setb cl
            movzx rdi, cl
            mov rax, 60
            syscall
        """
        exe = assemble(source)
        module, patcher, applied = harden_instructions(
            exe, lambda e: e.insn.mnemonic is Mnemonic.CMP)
        assert applied == 1
        result = run_executable(reassemble(module))
        assert result.exit_code == 1


class TestJccPattern:
    def test_jcc_protection_preserves_both_paths(self):
        wl = pincheck.workload()
        exe = wl.build()
        module, patcher, applied = harden_instructions(
            exe, lambda e: e.insn.mnemonic is Mnemonic.JCC)
        assert applied >= 3
        hardened = reassemble(module)
        good = run_executable(hardened, stdin=wl.good_input)
        bad = run_executable(hardened, stdin=wl.bad_input)
        assert wl.grant_marker in good.stdout
        assert b"DENIED" in bad.stdout

    def test_skip_of_protected_branch_is_detected(self):
        wl = pincheck.workload()
        exe = wl.build()
        module, patcher, _ = harden_instructions(
            exe, lambda e: e.insn.mnemonic is Mnemonic.JCC)
        hardened = reassemble(module)
        faulter = Faulter(hardened, wl.good_input, wl.bad_input,
                          wl.grant_marker, name="jcc-hardened")
        report = faulter.run_campaign("skip")
        vulnerable_jcc = [p for p in report.vulnerable_points()
                          if p.mnemonic.startswith("j")]
        assert not vulnerable_jcc


class TestPatcherBookkeeping:
    def test_protected_entries_refused(self):
        wl = pincheck.workload()
        module = disassemble(wl.build())
        patcher = Patcher(module)
        block = module.text().code_blocks()[0]
        entry = block.entries[0]
        entry.protected = True
        assert not patcher.patch_entry(entry)
        assert patcher.log[-1].reason == "already protected"

    def test_faulthandler_injected_once(self):
        wl = pincheck.workload()
        module = disassemble(wl.build())
        patcher = Patcher(module)
        first = patcher.ensure_faulthandler()
        second = patcher.ensure_faulthandler()
        assert first is second

    def test_faulthandler_exits_42(self):
        source = """
        .text
        .global _start
        _start:
            jmp fi_faulthandler
        """
        module = disassemble(assemble(
            source.replace("jmp fi_faulthandler", "nop\n    mov rax, 60\n"
                           "    mov rdi, 0\n    syscall")))
        patcher = Patcher(module)
        handler = patcher.ensure_faulthandler()
        # redirect the program into the handler
        from repro.gtirb.ir import SymExpr
        from repro.isa.insn import Instruction
        from repro.isa.operands import Imm
        block = module.text().code_blocks()[0]
        block.entries[0] = InsnEntry(
            Instruction(Mnemonic.JMP, (Imm(0, 4),)),
            {0: SymExpr("branch", handler)})
        result = run_executable(reassemble(module))
        assert result.exit_code == 42
        assert b"FAULT DETECTED" in result.stderr
