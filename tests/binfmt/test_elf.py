"""ELF64 writer/reader unit and property tests."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.binfmt import Executable, Section, SymbolDef, read_elf, write_elf
from repro.binfmt import elfdefs as d
from repro.errors import ElfError


def simple_exe(text=b"\x90\xC3", data=b"hello"):
    return Executable(
        entry=0x401000,
        sections=[
            Section(".text", 0x401000, text, flags="rx"),
            Section(".data", 0x402000, data, flags="rw"),
            Section(".bss", 0x403000, b"", mem_size=64, flags="rw",
                    nobits=True),
        ],
        symbols=[
            SymbolDef("_start", 0x401000, ".text", is_global=True,
                      is_func=True),
            SymbolDef("local_thing", 0x402001, ".data"),
        ],
    )


class TestWellFormedness:
    def test_header_fields(self):
        blob = write_elf(simple_exe())
        assert blob[:4] == b"\x7fELF"
        assert blob[4] == d.ELFCLASS64
        assert blob[5] == d.ELFDATA2LSB
        (e_type,) = __import__("struct").unpack_from("<H", blob, 16)
        assert e_type == d.ET_EXEC

    def test_segment_alignment_congruence(self):
        blob = write_elf(simple_exe())
        import struct
        e_phoff, = struct.unpack_from("<Q", blob, 32)
        e_phnum, = struct.unpack_from("<H", blob, 56)
        for index in range(e_phnum):
            (p_type, _, p_offset, p_vaddr, _, _, _, p_align) = \
                struct.unpack_from("<IIQQQQQQ", blob,
                                   e_phoff + index * 56)
            if p_type == d.PT_LOAD:
                assert p_offset % p_align == p_vaddr % p_align

    def test_roundtrip(self):
        exe = simple_exe()
        parsed = read_elf(write_elf(exe))
        assert parsed.entry == exe.entry
        assert parsed.section(".text").data == b"\x90\xC3"
        assert parsed.section(".data").data == b"hello"
        bss = parsed.section(".bss")
        assert bss.nobits and bss.mem_size == 64
        start = parsed.symbol("_start")
        assert start.is_global and start.is_func
        local = parsed.symbol("local_thing")
        assert not local.is_global

    def test_bad_magic_rejected(self):
        with pytest.raises(ElfError):
            read_elf(b"NOPE" + bytes(60))

    def test_wrong_machine_rejected(self):
        blob = bytearray(write_elf(simple_exe()))
        blob[18] = 0x03  # EM_386
        with pytest.raises(ElfError):
            read_elf(bytes(blob))

    @given(st.binary(min_size=1, max_size=512),
           st.binary(min_size=0, max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, text, data):
        exe = simple_exe(text=text, data=data)
        parsed = read_elf(write_elf(exe))
        assert parsed.section(".text").data == text
        assert parsed.section(".data").data == data


class TestExecutableModel:
    def test_section_at(self):
        exe = simple_exe()
        assert exe.section_at(0x401001).name == ".text"
        assert exe.section_at(0x403010).name == ".bss"
        assert exe.section_at(0x500000) is None

    def test_read_across_padding(self):
        exe = simple_exe()
        assert exe.read(0x402000, 5) == b"hello"
        assert exe.read(0x403000, 8) == bytes(8)  # NOBITS reads zero

    def test_stripped_loses_symbols(self):
        exe = simple_exe().stripped()
        assert exe.symbols == []
        assert exe.entry == 0x401000

    def test_code_size_counts_executable_only(self):
        exe = simple_exe()
        assert exe.code_size() == 2
