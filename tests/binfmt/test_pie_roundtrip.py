"""PIE (ET_DYN) reader/writer roundtrip on the committed fixture.

The real-binary frontier's layer-1 guarantee: reading a PIE ELF and
re-emitting it without touching anything preserves the binary
byte-for-byte — segments, dynamic symbols, and relocation entries
included — and unsupported inputs fail with a *typed* error instead
of misparsing.
"""

import struct
from pathlib import Path

import pytest

from repro.binfmt import read_elf, write_elf
from repro.binfmt import elfdefs as d
from repro.errors import ElfError, UnsupportedBinaryError

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"
PIE = FIXTURES / "bootloader_pie.elf"
STRIPPED = FIXTURES / "bootloader_stripped.elf"


@pytest.fixture(scope="module")
def pie_blob():
    return PIE.read_bytes()


class TestPieRoundtrip:
    def test_byte_identical(self, pie_blob):
        """read -> identity -> write reproduces the input exactly."""
        assert write_elf(read_elf(pie_blob)) == pie_blob

    def test_e_type(self, pie_blob):
        (e_type,) = struct.unpack_from("<H", pie_blob, 16)
        assert e_type == d.ET_DYN
        assert read_elf(pie_blob).pie

    def test_segments_preserved(self, pie_blob):
        exe = read_elf(pie_blob)
        again = read_elf(write_elf(exe))
        assert [(s.name, s.addr, s.flags, s.data, s.mem_size)
                for s in exe.sections] == \
               [(s.name, s.addr, s.flags, s.data, s.mem_size)
                for s in again.sections]

    def test_dynamic_symbols_preserved(self, pie_blob):
        exe = read_elf(pie_blob)
        assert exe.dynamic_symbols, "fixture must carry a dynsym"
        again = read_elf(write_elf(exe))
        assert again.dynamic_symbols == exe.dynamic_symbols

    def test_relocations_preserved(self, pie_blob):
        exe = read_elf(pie_blob)
        assert exe.relocations, "fixture must carry relocations"
        again = read_elf(write_elf(exe))
        assert again.relocations == exe.relocations
        reloc = exe.relocations[0]
        assert reloc.rtype == d.R_X86_64_RELATIVE
        assert reloc.anchored  # writer can re-site it if sections move

    def test_relocation_addend_tracks_moved_target(self, pie_blob):
        """An anchored RELATIVE addend follows its target section."""
        exe = read_elf(pie_blob)
        reloc = exe.relocations[0]
        target = exe.section(reloc.target_section)
        target.addr += 0x1000
        moved = read_elf(write_elf(exe)).relocations[0]
        assert moved.target_section == reloc.target_section
        assert moved.target_offset == reloc.target_offset
        assert moved.addend == reloc.addend + 0x1000

    def test_stripped_fixture_reads(self):
        exe = read_elf(STRIPPED.read_bytes())
        assert not exe.pie
        assert not exe.symbols
        assert write_elf(exe) == STRIPPED.read_bytes()


class TestUnsupportedBinaryError:
    def _with(self, pie_blob, offset, fmt, value):
        blob = bytearray(pie_blob)
        struct.pack_into(fmt, blob, offset, value)
        return bytes(blob)

    def test_rejects_unknown_e_type(self, pie_blob):
        rel = self._with(pie_blob, 16, "<H", 1)  # ET_REL
        with pytest.raises(UnsupportedBinaryError) as info:
            read_elf(rel)
        assert info.value.e_type == 1

    def test_rejects_foreign_machine(self, pie_blob):
        arm = self._with(pie_blob, 18, "<H", 0xB7)  # EM_AARCH64
        with pytest.raises(UnsupportedBinaryError) as info:
            read_elf(arm)
        assert info.value.e_machine == 0xB7

    def test_is_an_elf_error(self, pie_blob):
        """Callers catching the historical ElfError keep working."""
        rel = self._with(pie_blob, 16, "<H", 1)
        with pytest.raises(ElfError):
            read_elf(rel)
