"""Session API tests: Target/Oracle/EngineConfig, the hardening
registry, the deprecation shims, and the CLI knob plumbing."""

import json
import math

import pytest

from repro.api import (
    APPROACHES, EngineConfig, Target, evaluate_countermeasures,
    find_vulnerabilities, harden_binary)
from repro.cli import build_parser, main
from repro.emu.machine import run_executable
from repro.faulter.oracle import (
    AllOf, AnyOf, ExitCodeOracle, MarkerOracle, MemoryPredicateOracle,
    coerce_oracle, oracle_from_dict)
from repro.faulter.report import CRASHED, IGNORED, SUCCESS
from repro.hardening import (
    HARDENING_APPROACHES, HardeningApproach, approach_by_name,
    register_approach)
from repro.workloads import bootloader, corpus, pincheck

WORKLOADS = {"pincheck": pincheck.workload,
             "bootloader": bootloader.workload}


@pytest.fixture(params=sorted(WORKLOADS))
def wl(request):
    return WORKLOADS[request.param]()


class FakeRun:
    """Duck-typed RunResult for oracle unit tests."""

    def __init__(self, reason="exit", exit_code=0, stdout=b"",
                 memory=None):
        self.reason = reason
        self.exit_code = exit_code
        self.stdout = stdout
        self.memory = memory or {}

    @property
    def crashed(self):
        return self.reason in ("crash", "max-steps")


# ---------------------------------------------------------------------------
# deprecation-shim equivalence (acceptance criterion: bit-identical)
# ---------------------------------------------------------------------------


def _stable(payload):
    """Strip wall-clock timing from report payloads before comparing.

    ``meta["compile_seconds"]`` measures real compilation time and is
    the single non-deterministic report field; everything else must
    stay bit-identical.
    """
    if isinstance(payload, dict):
        return {key: _stable(value) for key, value in payload.items()
                if key != "compile_seconds"}
    if isinstance(payload, list):
        return [_stable(value) for value in payload]
    return payload


class TestShimEquivalence:
    def test_campaign_bit_identical(self, wl):
        new = wl.target().campaign(("skip",))
        with pytest.deprecated_call():
            old = find_vulnerabilities(
                wl.build(), wl.good_input, wl.bad_input,
                wl.grant_marker, models=("skip",), name=wl.name)
        assert old.keys() == new.keys()
        assert _stable(old["skip"].to_dict()) == _stable(
            new["skip"].to_dict())

    def test_evaluate_bit_identical(self, wl):
        new = wl.target().evaluate(models=("skip",))
        with pytest.deprecated_call():
            old = evaluate_countermeasures(
                wl.build(), wl.good_input, wl.bad_input,
                wl.grant_marker, models=("skip",), name=wl.name)
        assert old.diff.to_dict() == new.diff.to_dict()
        assert _stable(old.to_dict()) == _stable(new.to_dict())

    def test_harden_shim_equivalent(self):
        wl = pincheck.workload()
        new = wl.target().harden(approach="detour")
        with pytest.deprecated_call():
            old = harden_binary(
                wl.build(), wl.good_input, wl.bad_input,
                wl.grant_marker, approach="detour", name=wl.name)
        assert _stable(old.to_dict()) == _stable(new.to_dict())

    def test_all_three_shims_warn(self):
        wl = pincheck.workload()
        for fn in (find_vulnerabilities, evaluate_countermeasures):
            with pytest.deprecated_call():
                fn(wl.build(), wl.good_input, wl.bad_input,
                   wl.grant_marker, models=("skip",))


# ---------------------------------------------------------------------------
# EngineConfig
# ---------------------------------------------------------------------------


class TestEngineConfig:
    def test_roundtrip_lossless_and_json_safe(self):
        config = EngineConfig(
            backend="multiprocess", checkpoint_interval=64, workers=3,
            k_faults=2, samples=50, seed=7, stream=True,
            max_resident_points=128)
        payload = json.loads(json.dumps(config.to_dict()))
        assert EngineConfig.from_dict(payload) == config

    def test_roundtrip_infinite_interval(self):
        config = EngineConfig(checkpoint_interval=math.inf)
        payload = config.to_dict()
        assert payload["checkpoint_interval"] == "inf"
        json.dumps(payload)  # strictly JSON-safe
        assert EngineConfig.from_dict(payload) == config

    def test_default_roundtrip(self):
        assert EngineConfig.from_dict(
            EngineConfig().to_dict()) == EngineConfig()

    def test_validation_at_construction(self):
        with pytest.raises(ValueError, match="unknown backend"):
            EngineConfig(backend="quantum")
        with pytest.raises(ValueError, match="workers"):
            EngineConfig(backend="sequential", workers=4)
        with pytest.raises(ValueError, match="streaming"):
            EngineConfig(stream=False, max_resident_points=16)
        with pytest.raises(ValueError, match="k_faults"):
            EngineConfig(k_faults=0)
        with pytest.raises(ValueError, match="max_resident_points"):
            EngineConfig(max_resident_points=0)

    def test_backend_instance_not_serializable(self):
        from repro.faulter.engine import SequentialBackend
        config = EngineConfig(backend=SequentialBackend())
        with pytest.raises(ValueError, match="instance"):
            config.to_dict()

    def test_resolve_picks_multiprocess_for_workers(self):
        from repro.faulter.engine import MultiprocessBackend
        backend = EngineConfig(workers=2).resolve()
        assert isinstance(backend, MultiprocessBackend)


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------


class TestOracles:
    def test_marker_classification(self):
        oracle = MarkerOracle(b"GRANTED")
        assert oracle.classify(FakeRun(stdout=b"ACCESS GRANTED")) \
            == SUCCESS
        assert oracle.classify(FakeRun(stdout=b"DENIED")) == IGNORED
        assert oracle.classify(
            FakeRun(reason="crash", stdout=b"DENIED")) == CRASHED
        # the marker wins even when the run also crashed (historical
        # classify_result semantics)
        assert oracle.classify(
            FakeRun(reason="crash", stdout=b"GRANTED")) == SUCCESS

    def test_exit_code_classification(self):
        oracle = ExitCodeOracle(0)
        assert oracle.classify(FakeRun(exit_code=0)) == SUCCESS
        assert oracle.classify(FakeRun(exit_code=7)) == IGNORED
        assert oracle.classify(FakeRun(reason="crash")) == CRASHED
        # max-steps exhaustion with a matching nominal code is a
        # crash, not a grant
        assert oracle.classify(
            FakeRun(reason="max-steps", exit_code=0)) == CRASHED

    def test_memory_predicate_classification(self):
        oracle = MemoryPredicateOracle(0x1000, 2, equals=b"GO")
        assert oracle.watches() == ((0x1000, 2),)
        hit = FakeRun(memory={(0x1000, 2): b"GO"})
        miss = FakeRun(memory={(0x1000, 2): b"NO"})
        absent = FakeRun()
        assert oracle.classify(hit) == SUCCESS
        assert oracle.classify(miss) == IGNORED
        assert oracle.classify(absent) == IGNORED

    def test_memory_predicate_callable(self):
        oracle = MemoryPredicateOracle(
            0x1000, 1, predicate=lambda data: data[0] & 1 == 1)
        assert oracle.classify(
            FakeRun(memory={(0x1000, 1): b"\x03"})) == SUCCESS
        assert oracle.classify(
            FakeRun(memory={(0x1000, 1): b"\x02"})) == IGNORED
        with pytest.raises(ValueError, match="serializable"):
            oracle.to_dict()

    def test_memory_predicate_needs_exactly_one(self):
        with pytest.raises(ValueError, match="exactly one"):
            MemoryPredicateOracle(0x1000, 2)
        with pytest.raises(ValueError, match="exactly one"):
            MemoryPredicateOracle(0x1000, 2, equals=b"GO",
                                  predicate=lambda d: True)

    def test_composites(self):
        marker = MarkerOracle(b"OK")
        code = ExitCodeOracle(0)
        both = AllOf(marker, code)
        either = AnyOf(marker, code)
        granted = FakeRun(stdout=b"OK", exit_code=0)
        half = FakeRun(stdout=b"OK", exit_code=1)
        neither = FakeRun(stdout=b"NO", exit_code=1)
        assert both.classify(granted) == SUCCESS
        assert both.classify(half) == IGNORED
        assert either.classify(half) == SUCCESS
        assert either.classify(neither) == IGNORED
        with pytest.raises(ValueError, match="at least one"):
            AllOf()

    def test_composite_watches_deduped(self):
        a = MemoryPredicateOracle(0x1000, 2, equals=b"GO")
        b = MemoryPredicateOracle(0x1000, 2, equals=b"GO")
        c = MemoryPredicateOracle(0x2000, 4, equals=b"\0\0\0\0")
        assert AllOf(a, b, c).watches() == ((0x1000, 2), (0x2000, 4))

    @pytest.mark.parametrize("oracle", [
        MarkerOracle(b"ACCESS \xff GRANTED"),
        ExitCodeOracle(42),
        MemoryPredicateOracle(0x404000, 8, equals=b"\x00\xffsecret"),
        AllOf(MarkerOracle(b"A"), ExitCodeOracle(0)),
        AnyOf(MarkerOracle(b"A"),
              AllOf(ExitCodeOracle(1), MarkerOracle(b"B"))),
    ])
    def test_serialization_roundtrip(self, oracle):
        payload = json.loads(json.dumps(oracle.to_dict()))
        assert oracle_from_dict(payload) == oracle

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle kind"):
            oracle_from_dict({"kind": "astrology"})

    def test_coercion(self):
        assert coerce_oracle(b"MARK") == MarkerOracle(b"MARK")
        oracle = ExitCodeOracle(3)
        assert coerce_oracle(oracle) is oracle
        with pytest.raises(TypeError, match="Oracle"):
            coerce_oracle(42)

    def test_memory_watch_capture_end_to_end(self):
        """Machine.run captures watched ranges into RunResult.memory."""
        wl = corpus.exitgate_workload()
        exe = wl.build()
        tok = exe.symbol("tok_buf").value
        result = run_executable(exe, stdin=b"GO",
                                watches=((tok, 2),))
        assert result.memory[(tok, 2)] == b"GO"
        oracle = MemoryPredicateOracle(tok, 2, equals=b"GO")
        assert oracle.classify(result) == SUCCESS


# ---------------------------------------------------------------------------
# non-marker oracle campaigns (acceptance criterion)
# ---------------------------------------------------------------------------


class TestExitCodeCampaign:
    def test_streaming_campaign_finds_vulnerabilities(self):
        wl = corpus.exitgate_workload()
        reports = wl.target().campaign(
            ("skip",), EngineConfig(stream=True))
        report = reports["skip"]
        assert report.vulnerable
        assert report.meta["stream"] is True

    def test_backends_bit_identical_under_exit_oracle(self):
        """The oracle crosses process boundaries (pickled to
        workers)."""
        wl = corpus.exitgate_workload()
        sequential = wl.target().campaign(("skip",))["skip"]
        multi = wl.target().campaign(
            ("skip",),
            EngineConfig(backend="multiprocess", workers=2))["skip"]
        seq = sequential.to_dict()
        par = multi.to_dict()
        seq.pop("meta"), par.pop("meta")  # backends differ, rows not
        assert seq == par

    def test_full_differential_loop(self):
        wl = corpus.exitgate_workload()
        evaluation = wl.target().evaluate(models=("skip",))
        census = evaluation.diff.counts(model="skip")
        assert census["eliminated"] >= 1
        assert census["surviving"] == 0

    def test_memory_oracle_campaign(self):
        """A memory-predicate oracle drives a campaign end-to-end:
        grant means 'the token buffer holds the magic token when the
        run ends'."""
        wl = corpus.exitgate_workload()
        exe = wl.build()
        tok = exe.symbol("tok_buf").value
        oracle = MemoryPredicateOracle(tok, 2, equals=b"GO")
        target = Target(exe, b"GO", b"NO", oracle, name="memgate")
        report = target.campaign(("skip",))["skip"]
        # a skip of the read-length check cannot rewrite the buffer,
        # so this oracle sees *no* successful faults -- unlike the
        # exit-code oracle over the identical binary
        exit_report = wl.target().campaign(("skip",))["skip"]
        assert not report.vulnerable
        assert exit_report.vulnerable
        assert report.total_faults == exit_report.total_faults

    def test_broken_exit_oracle_rejected(self):
        from repro.errors import ReproError
        wl = corpus.exitgate_workload()
        with pytest.raises(ReproError, match="good input"):
            Target(wl.build(), b"XX", b"NO",
                   ExitCodeOracle(0)).campaign(("skip",))


# ---------------------------------------------------------------------------
# hardening-approach registry
# ---------------------------------------------------------------------------


class _StubResult:
    def __init__(self, exe):
        self.hardened = exe
        self.provenance = None

    def report(self):
        return "stub"


class TestApproachRegistry:
    def test_builtins_registered(self):
        assert set(APPROACHES) <= set(HARDENING_APPROACHES)
        for name in ("faulter+patcher", "hybrid", "detour"):
            entry = approach_by_name(name)
            assert entry.provenance
            assert callable(entry.harden)
        assert approach_by_name(
            "faulter+patcher").consumes_fault_models
        assert not approach_by_name("detour").consumes_fault_models

    def test_unknown_approach(self):
        with pytest.raises(ValueError, match="faulter"):
            approach_by_name("magic")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already"):
            register_approach(HardeningApproach(
                name="detour", harden=lambda *a, **k: None))

    def test_third_party_approach_plugs_in(self):
        calls = {}

        def noop_harden(exe, good, bad, oracle, *, models, name,
                        **kwargs):
            calls.update(models=models, name=name, oracle=oracle)
            return _StubResult(exe)

        register_approach(HardeningApproach(
            name="test-noop", harden=noop_harden,
            provenance="identity"))
        try:
            wl = pincheck.workload()
            result = wl.target().harden(approach="test-noop",
                                        fault_models=("bitflip",))
            assert isinstance(result, _StubResult)
            assert calls["models"] == ("bitflip",)
            assert calls["name"] == wl.name
            assert calls["oracle"] == MarkerOracle(wl.grant_marker)
            # CLI --approach choices derive from the registry
            parser = build_parser()
            args = parser.parse_args(
                ["harden", "t", "-o", "out", "--approach",
                 "test-noop", "--good", "00", "--bad", "01",
                 "--marker", "M"])
            assert args.approach == "test-noop"
        finally:
            del HARDENING_APPROACHES["test-noop"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["harden", "t", "-o", "out", "--approach",
                 "test-noop", "--good", "00", "--bad", "01",
                 "--marker", "M"])


# ---------------------------------------------------------------------------
# CLI: shared parents, parser-owned defaults, knob forwarding
# ---------------------------------------------------------------------------


class TestCLIKnobs:
    def test_model_default_owned_by_parser(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fault", "t", "--good", "00", "--bad", "01",
             "--marker", "M"])
        assert args.model == ["skip"]

    def test_model_append_replaces_default(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fault", "t", "--good", "00", "--bad", "01",
             "--marker", "M", "--model", "bitflip",
             "--model", "stuck0"])
        assert args.model == ["bitflip", "stuck0"]
        # and the shared default list was not mutated by the append
        again = parser.parse_args(
            ["fault", "t", "--good", "00", "--bad", "01",
             "--marker", "M"])
        assert again.model == ["skip"]

    def test_engine_knobs_shared_across_subcommands(self):
        parser = build_parser()
        for sub in (["fault", "t"],
                    ["harden", "t", "-o", "o"],
                    ["compare", "pincheck"]):
            args = parser.parse_args(
                sub + ["--good", "00", "--bad", "01", "--marker", "M",
                       "--backend", "multiprocess", "--workers", "2",
                       "--checkpoint-interval", "16",
                       "--max-resident-points", "64", "--stream"])
            assert args.backend == "multiprocess"
            assert args.workers == 2
            assert args.checkpoint_interval == 16
            assert args.max_resident_points == 64
            assert args.stream is True

    def test_harden_evaluate_forwards_engine_knobs(self, capsys,
                                                   tmp_path,
                                                   monkeypatch):
        """Regression: ``r2r harden --evaluate`` used to silently
        drop every engine knob (the parser never accepted them)."""
        from repro.binfmt import write_elf
        import repro.cli as cli

        wl = pincheck.workload()
        target_path = tmp_path / "t.elf"
        output = tmp_path / "out.elf"
        target_path.write_bytes(write_elf(wl.build()))

        seen = {}
        original = cli.Target.evaluate

        def spy(self, **kwargs):
            seen.update(kwargs)
            return original(self, **kwargs)

        monkeypatch.setattr(cli.Target, "evaluate", spy)
        code = main(["harden", str(target_path), "-o", str(output),
                     "--evaluate", "--good", "text:1234",
                     "--bad", "text:6789",
                     "--marker", "ACCESS GRANTED",
                     "--checkpoint-interval", "32",
                     "--max-resident-points", "64"])
        assert code == 0
        config = seen["config"]
        assert config.checkpoint_interval == 32
        assert config.max_resident_points == 64
        assert output.exists()
        assert "differential evaluation" in capsys.readouterr().out

    def test_evaluate_honours_k_fault_config(self):
        """Regression: evaluate used to silently ignore the
        multi-fault knobs its EngineConfig carried."""
        wl = pincheck.workload()
        config = EngineConfig(k_faults=2, samples=40, seed=3)
        evaluation = wl.target().evaluate(approach="detour",
                                          models=("skip",),
                                          config=config)
        base = evaluation.baseline_reports["skip"]
        hard = evaluation.hardened_reports["skip"]
        # both campaigns ran as sampled pair campaigns, exactly like
        # Target.campaign with the same config
        assert base.target.endswith("(pairs)")
        assert hard.target.endswith("(pairs)")
        direct = wl.target().campaign(("skip",), config)["skip"]
        assert _stable(direct.to_dict()) == _stable(base.to_dict())

    def test_plain_harden_rejects_engine_knobs(self, capsys,
                                               tmp_path):
        """Regression: ``r2r harden`` without --evaluate used to
        accept the shared engine knobs and silently drop them."""
        from repro.binfmt import write_elf

        wl = pincheck.workload()
        target_path = tmp_path / "t.elf"
        target_path.write_bytes(write_elf(wl.build()))
        code = main(["harden", str(target_path), "-o",
                     str(tmp_path / "out.elf"),
                     "--good", "text:1234", "--bad", "text:6789",
                     "--marker", "ACCESS GRANTED",
                     "--backend", "multiprocess"])
        assert code == 2
        assert "--evaluate" in capsys.readouterr().err

    def test_harden_evaluate_rejects_conflicting_knobs(self, capsys,
                                                       tmp_path):
        from repro.binfmt import write_elf

        wl = pincheck.workload()
        target_path = tmp_path / "t.elf"
        target_path.write_bytes(write_elf(wl.build()))
        code = main(["harden", str(target_path), "-o",
                     str(tmp_path / "out.elf"), "--evaluate",
                     "--good", "text:1234", "--bad", "text:6789",
                     "--marker", "ACCESS GRANTED",
                     "--backend", "sequential", "--workers", "2"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_compare_exitgate_uses_workload_oracle(self, capsys):
        """`r2r compare exitgate`: the whole differential loop under
        an exit-code oracle, no --marker anywhere."""
        code = main(["compare", "exitgate", "--model", "skip"])
        out = capsys.readouterr().out
        assert code == 0
        assert "differential evaluation" in out
        assert "eliminated=" in out
