"""Reassembleable-disassembly round trips: behaviour must be preserved."""

import pytest

from repro.disasm import disassemble, pretty_print, reassemble
from repro.emu import run_executable
from repro.workloads import bootloader, corpus, pincheck


def roundtrip_behavior(exe, stdin=b""):
    before = run_executable(exe, stdin=stdin)
    module = disassemble(exe)
    after = run_executable(reassemble(module), stdin=stdin)
    return before, after


class TestCorpusRoundtrips:
    @pytest.mark.parametrize("name", ["exit42", "arith", "stack_ops",
                                      "call_ret", "indirect", "memwrites",
                                      "setcc_cmov"])
    def test_behavior_preserved(self, name):
        before, after = roundtrip_behavior(corpus.build(name))
        assert before.behavior() == after.behavior()

    def test_echo_roundtrip(self):
        before, after = roundtrip_behavior(corpus.build("echo4"),
                                           stdin=b"wxyz")
        assert before.behavior() == after.behavior()


class TestCaseStudyRoundtrips:
    def test_pincheck_good_and_bad(self):
        wl = pincheck.workload()
        exe = wl.build()
        module = disassemble(exe)
        rebuilt = reassemble(module)
        for stdin in (wl.good_input, wl.bad_input):
            before = run_executable(exe, stdin=stdin)
            after = run_executable(rebuilt, stdin=stdin)
            assert before.behavior() == after.behavior()

    def test_bootloader_good_and_bad(self):
        wl = bootloader.workload()
        exe = wl.build()
        rebuilt = reassemble(disassemble(exe))
        for stdin in (wl.good_input, wl.bad_input):
            before = run_executable(exe, stdin=stdin)
            after = run_executable(rebuilt, stdin=stdin)
            assert before.behavior() == after.behavior()

    def test_stripped_binary_roundtrip(self):
        wl = pincheck.workload()
        exe = wl.build().stripped()
        rebuilt = reassemble(disassemble(exe))
        result = run_executable(rebuilt, stdin=wl.good_input)
        assert wl.grant_marker in result.stdout

    def test_double_roundtrip(self):
        wl = pincheck.workload()
        once = reassemble(disassemble(wl.build()))
        twice = reassemble(disassemble(once))
        result = run_executable(twice, stdin=wl.good_input)
        assert wl.grant_marker in result.stdout


class TestModuleStructure:
    def test_blocks_and_symbols(self):
        wl = pincheck.workload()
        module = disassemble(wl.build())
        text = module.text()
        assert len(text.code_blocks()) >= 5
        assert module.entry is not None
        assert module.has_symbol("expected_pin")

    def test_branch_symbolized(self):
        wl = pincheck.workload()
        module = disassemble(wl.build())
        branch_exprs = [
            entry.sym_operands[0]
            for block in module.text().code_blocks()
            for entry in block.entries
            if entry.insn.is_branch and 0 in entry.sym_operands
        ]
        assert branch_exprs, "no symbolized branches found"
        assert all(e.kind == "branch" for e in branch_exprs)

    def test_pointer_table_symbolized(self):
        module = disassemble(corpus.build("indirect"))
        sym_words = module.aux["symbolized_words"]
        assert sym_words >= 1  # the .quad set9 entry

    def test_pretty_print_is_parseable_text(self):
        wl = bootloader.workload()
        text = pretty_print(disassemble(wl.build()))
        assert ".section .text" in text
        assert ".entry" in text
        assert "syscall" in text


class TestSymbolizationModes:
    def test_refined_preserves_decoy(self):
        """The planted decoy constant survives refined rewriting."""
        from repro.emu import run_executable
        wl = bootloader.workload()
        exe = wl.build()
        rebuilt = reassemble(disassemble(exe, mode="refined"))
        result = run_executable(rebuilt, stdin=wl.good_input)
        assert wl.grant_marker in result.stdout

    def test_naive_symbolizes_more_words(self):
        wl = bootloader.workload()
        exe = wl.build()
        refined = disassemble(exe, mode="refined")
        naive = disassemble(exe, mode="naive")
        assert naive.aux["symbolized_words"] >= \
            refined.aux["symbolized_words"]
