"""Symbolization unit tests: reference kinds, splitting, aux data."""

import pytest

from repro.asm import assemble
from repro.disasm import disassemble
from repro.gtirb.ir import DataBlock, SymExpr
from repro.isa.insn import Mnemonic


def module_of(source, mode="refined"):
    return disassemble(assemble(source), mode=mode)


class TestReferenceKinds:
    def test_branch_kind(self):
        module = module_of("""
        .text
        .global _start
        _start:
            jmp next
        next:
            mov rax, 60
            mov rdi, 0
            syscall
        """)
        jmp_entry = module.text().code_blocks()[0].entries[-1]
        expr = jmp_entry.sym_operands[0]
        assert expr.kind == "branch"
        assert expr.symbol.name == "next"

    def test_mem_rip_kind(self):
        module = module_of("""
        .text
        .global _start
        _start:
            lea rsi, [rel blob]
            mov rax, 60
            mov rdi, 0
            syscall
        .data
        blob: .byte 1
        """)
        lea = module.text().code_blocks()[0].entries[0]
        expr = lea.sym_operands[1]
        assert expr.kind == "mem"
        assert expr.symbol.name == "blob"

    def test_mem_absolute_kind(self):
        module = module_of("""
        .text
        .global _start
        _start:
            mov rdx, qword ptr [blob]
            mov rax, 60
            mov rdi, 0
            syscall
        .data
        blob: .quad 9
        """)
        mov = module.text().code_blocks()[0].entries[0]
        assert mov.sym_operands[1].kind == "mem"

    def test_imm_kind_movabs(self):
        module = module_of("""
        .text
        .global _start
        _start:
            mov rbx, offset blob
            mov rax, 60
            mov rdi, 0
            syscall
        .data
        blob: .quad 9
        """)
        mov = module.text().code_blocks()[0].entries[0]
        assert mov.sym_operands[1].kind == "imm"


class TestDataSplitting:
    SOURCE = """
    .text
    .global _start
    _start:
        lea rsi, [rel second]
        mov rax, 60
        mov rdi, 0
        syscall
    .data
    first:  .quad 1, 2
    second: .quad 3
    third:  .byte 9
    """

    def test_split_at_referenced_addresses(self):
        module = module_of(self.SOURCE)
        data = module.section(".data")
        addresses = [b.address for b in data.blocks]
        # split points at first (symbol), second (referenced), third
        assert module.symbol("second").referent in data.blocks
        assert len(data.blocks) >= 3

    def test_block_sizes_partition_section(self):
        module = module_of(self.SOURCE)
        data = module.section(".data")
        total = sum(b.byte_size() for b in data.blocks)
        assert total == 8 * 3 + 1

    def test_bss_splitting(self):
        module = module_of("""
        .text
        .global _start
        _start:
            lea rsi, [rel buf_b]
            mov rax, 60
            mov rdi, 0
            syscall
        .bss
        buf_a: .zero 16
        buf_b: .zero 8
        """)
        bss = module.section(".bss")
        assert all(b.zero_fill for b in bss.blocks)
        assert sum(b.zero_size for b in bss.blocks) == 24
        assert module.symbol("buf_b").referent.zero_size == 8


class TestAuxData:
    def test_mode_recorded(self):
        wl_source = """
        .text
        .global _start
        _start:
            mov rax, 60
            mov rdi, 0
            syscall
        """
        assert module_of(wl_source).aux["symbolization_mode"] == \
            "refined"
        assert module_of(wl_source, mode="naive") \
            .aux["symbolization_mode"] == "naive"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            module_of(".text\n.global _start\n_start:\n ret\n",
                      mode="psychic")

    def test_pointer_chain_in_data(self):
        """A data pointer to data that itself is only referenced by the
        pointer (one level of indirection, fixpoint scan)."""
        module = module_of("""
        .text
        .global _start
        _start:
            mov rax, qword ptr [head]
            mov rax, 60
            mov rdi, 0
            syscall
        .data
        head: .quad tail
        tail: .quad 77
        """)
        head_block = module.symbol("head").referent
        expr = next(item[0] for item in head_block.items
                    if isinstance(item, tuple))
        assert isinstance(expr, SymExpr)
        assert expr.symbol.name == "tail"
