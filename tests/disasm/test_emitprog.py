"""Structured program emission and the instruction address map."""

from repro.asm.assembler import assemble_with_map
from repro.disasm import disassemble
from repro.disasm.emitprog import module_to_program
from repro.emu import run_executable
from repro.workloads import bootloader, pincheck


class TestModuleToProgram:
    def test_behaviour_preserved(self):
        wl = pincheck.workload()
        module = disassemble(wl.build())
        program = module_to_program(module)
        exe, _ = assemble_with_map(program)
        good = run_executable(exe, stdin=wl.good_input)
        assert wl.grant_marker in good.stdout

    def test_tag_map_covers_every_entry(self):
        wl = pincheck.workload()
        module = disassemble(wl.build())
        program = module_to_program(module)
        exe, tag_map = assemble_with_map(program)
        entries = [e for b in module.text().code_blocks()
                   for e in b.entries]
        assert len(tag_map) == len(entries)
        assert set(tag_map) == set(entries)

    def test_addresses_decode_to_same_mnemonic(self):
        wl = bootloader.workload()
        module = disassemble(wl.build())
        program = module_to_program(module)
        exe, tag_map = assemble_with_map(program)
        from repro.emu import Machine
        machine = Machine(exe)
        for entry, address in tag_map.items():
            decoded = machine.fetch_decode(address)
            assert decoded.mnemonic is entry.insn.mnemonic, (
                f"{entry.insn} landed at {address:#x} as {decoded}")

    def test_addresses_are_unique(self):
        wl = pincheck.workload()
        module = disassemble(wl.build())
        exe, tag_map = assemble_with_map(module_to_program(module))
        addresses = list(tag_map.values())
        assert len(addresses) == len(set(addresses))

    def test_matches_text_printer_semantics(self):
        """Both emission paths must produce behaviourally equal
        binaries."""
        from repro.disasm import reassemble
        wl = bootloader.workload()
        module = disassemble(wl.build())
        via_text = reassemble(module)
        via_program, _ = assemble_with_map(module_to_program(module))
        for stdin in (wl.good_input, wl.bad_input):
            a = run_executable(via_text, stdin=stdin)
            b = run_executable(via_program, stdin=stdin)
            assert a.behavior() == b.behavior()
