"""Pretty-printer unit tests: rendering rules and error diagnostics."""

import pytest

from repro.disasm.pprint import pretty_print, render_instruction
from repro.errors import RewriteError
from repro.gtirb.ir import (
    CodeBlock, DataBlock, GSection, InsnEntry, Module, SymExpr, Symbol)
from repro.isa import Cond, Imm, Mem, Mnemonic, Reg, reg
from repro.isa.insn import Instruction, insn
from repro.isa.registers import RIP


def entry_of(instruction, syms=None):
    return InsnEntry(instruction, dict(syms or {}))


class TestInstructionRendering:
    def test_plain_forms(self):
        rax, rbx = Reg(reg("rax")), Reg(reg("rbx"))
        cases = [
            (insn(Mnemonic.MOV, rax, rbx), "mov rax, rbx"),
            (insn(Mnemonic.CMP, rax, Imm(-5)), "cmp rax, -5"),
            (insn(Mnemonic.RET), "ret"),
            (insn(Mnemonic.SETCC, Reg(reg("cl")), cond=Cond.B),
             "setb cl"),
            (insn(Mnemonic.MOV, rax,
                  Mem(base=reg("rsp"), disp=-8, size=8)),
             "mov rax, qword ptr [rsp-8]"),
        ]
        for instruction, expected in cases:
            assert render_instruction(entry_of(instruction)) == expected

    def test_movabs_rendering(self):
        big = insn(Mnemonic.MOV, Reg(reg("rax")), Imm(1 << 40, 8))
        assert render_instruction(entry_of(big)).startswith("movabs")

    def test_symbolic_branch(self):
        target = Symbol("there")
        jump = insn(Mnemonic.JMP, Imm(0, 4))
        text = render_instruction(
            entry_of(jump, {0: SymExpr("branch", target)}))
        assert text == "jmp there"

    def test_symbolic_mem_with_addend(self):
        sym = Symbol("buf")
        load = insn(Mnemonic.MOV, Reg(reg("rax")),
                    Mem(base=RIP, disp=0, size=8))
        text = render_instruction(
            entry_of(load, {1: SymExpr("mem", sym, 4)}))
        assert text == "mov rax, qword ptr [rel buf+4]"

    def test_symbolic_imm(self):
        sym = Symbol("fn")
        mov = insn(Mnemonic.MOV, Reg(reg("rbx")), Imm(0, 8))
        text = render_instruction(
            entry_of(mov, {1: SymExpr("imm", sym)}))
        assert text == "mov rbx, offset fn"

    def test_unsymbolized_rip_is_error(self):
        load = insn(Mnemonic.MOV, Reg(reg("rax")),
                    Mem(base=RIP, disp=0x10, size=8))
        with pytest.raises(RewriteError, match="RIP"):
            render_instruction(entry_of(load))


class TestModuleRendering:
    def _module(self):
        module = Module(name="unit")
        block = CodeBlock(entries=[
            entry_of(insn(Mnemonic.MOV, Reg(reg("rax")), Imm(60))),
            entry_of(insn(Mnemonic.SYSCALL)),
        ])
        module.sections.append(GSection(".text", [block], "rx"))
        data = DataBlock(address=0x402000, items=[
            b"\x01\x02",
            (SymExpr("mem", Symbol("start_sym")), 8),
        ])
        module.sections.append(GSection(".data", [data], "rw"))
        start = module.add_symbol("start_sym", block, is_global=True)
        module.entry = start
        return module

    def test_sections_and_labels(self):
        text = pretty_print(self._module())
        assert ".entry start_sym" in text
        assert ".global start_sym" in text
        assert "start_sym:" in text
        assert ".section .text" in text
        assert ".section .data" in text

    def test_data_directives(self):
        text = pretty_print(self._module())
        assert ".byte 0x01, 0x02" in text
        assert ".quad start_sym" in text

    def test_zero_fill_rendering(self):
        module = self._module()
        module.section(".data").blocks.append(
            DataBlock(zero_fill=True, zero_size=32))
        assert ".zero 32" in pretty_print(module)

    def test_missing_entry_rejected(self):
        module = self._module()
        module.entry = None
        with pytest.raises(RewriteError, match="entry"):
            pretty_print(module)
