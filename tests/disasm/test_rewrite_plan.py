"""RewriteUnit/RewritePlan recovery over bundled workloads and
fixtures.

The plan is the shared currency of the per-function pipeline, so the
invariants below are what every consumer (patcher, detour, hybrid,
chunked campaigns) leans on: total text coverage, disjoint extents,
interleaving-safe lookup, and graceful degradation on stripped input.
"""

from pathlib import Path

import pytest

from repro.binfmt import read_elf
from repro.disasm.units import (
    ORIGIN_DATA,
    ORIGIN_FUNCTION,
    RewritePlan,
    RewriteUnit,
    build_plan,
    recover_plan,
)
from repro.workloads import bootloader, corpus, pincheck

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"


def plan_of(exe):
    _, plan = recover_plan(exe)
    return plan


class TestPlanInvariants:
    @pytest.mark.parametrize("build", [
        lambda: pincheck.build(),
        lambda: pincheck.build(rich=True),
        lambda: bootloader.build(),
        lambda: corpus.build("call_ret"),
        lambda: corpus.build("jump_table"),
    ])
    def test_total_coverage(self, build):
        exe = build()
        plan = plan_of(exe)
        assert plan.coverage() == exe.code_size()

    def test_extents_disjoint_and_sorted(self):
        plan = plan_of(pincheck.build(rich=True))
        for (s1, e1, _), (s2, e2, _) in zip(plan.extents,
                                            plan.extents[1:]):
            assert s1 < e1 <= s2 < e2

    def test_unit_at_resolves_every_extent_byte(self):
        plan = plan_of(bootloader.build(rich=True))
        for start, end, unit in plan.extents:
            assert plan.unit_at(start) is unit
            assert plan.unit_at(end - 1) is unit
        below = plan.extents[0][0] - 1
        assert plan.unit_at(below) is None

    def test_function_units_named_after_symbols(self):
        plan = plan_of(pincheck.build(rich=True))
        names = {u.name for u in plan.units
                 if u.origin == ORIGIN_FUNCTION}
        assert {"_start", "write_all", "scrub"} <= names

    def test_slice_splits_at_boundaries(self):
        plan = plan_of(pincheck.build(rich=True))
        lo = plan.extents[0][0]
        hi = plan.extents[-1][1]
        pieces = list(plan.slice(lo, hi))
        assert sum(e - s for s, e, _ in pieces) == hi - lo
        covered = [p for p in pieces if p[2] is not None]
        assert len(covered) == len(plan.extents)


class TestStrippedRecovery:
    def test_stripped_fixture_still_covered(self):
        exe = read_elf(
            (FIXTURES / "bootloader_stripped.elf").read_bytes())
        assert not exe.symbols
        plan = plan_of(exe)
        assert plan.coverage() == exe.code_size()
        assert plan.code_units()

    def test_pie_fixture_units_match_symbol_build(self):
        pie = read_elf((FIXTURES / "bootloader_pie.elf").read_bytes())
        plan = plan_of(pie)
        assert [u.start for u in plan.units] == \
            [u.start for u in plan_of(bootloader.build(size=8)).units]


class TestOpaqueUnits:
    @staticmethod
    def _undecodable_exe():
        from repro.binfmt.image import Executable, Section, SymbolDef

        # exit(0) followed by bytes no x86-64 decoder accepts: the
        # recovery must preserve them opaquely, not reject the binary
        text = (bytes.fromhex("b83c000000bf000000000f05")
                + b"\x06\x07" * 3)
        return Executable(
            entry=0x401000,
            sections=[Section(".text", 0x401000, text, flags="rx")],
            symbols=[SymbolDef("_start", 0x401000, ".text",
                               is_global=True, is_func=True)])

    def test_undecodable_region_is_opaque_not_fatal(self):
        exe = self._undecodable_exe()
        plan = plan_of(exe)
        assert plan.coverage() == exe.code_size()
        opaque = plan.opaque_units()
        assert opaque
        for unit in opaque:
            assert unit.origin == ORIGIN_DATA
            assert unit.instruction_count() == 0

    def test_opaque_lookup(self):
        plan = plan_of(self._undecodable_exe())
        unit = plan.opaque_units()[0]
        assert plan.unit_at(unit.start) is unit
        assert plan.unit_at(unit.end - 1) is unit


class TestPlanShape:
    def test_to_dict(self):
        plan = plan_of(pincheck.build())
        payload = plan.to_dict()
        assert payload["units"]
        for entry in payload["units"]:
            assert set(entry) >= {"name", "start", "end", "opaque",
                                  "origin", "instructions"}

    def test_manual_plan_interleaved_extents(self):
        # two functions whose blocks interleave: lookup must follow
        # extents, not [start, end) spans
        a = RewriteUnit("a", 0x100, 0x300)
        b = RewriteUnit("b", 0x180, 0x280)
        plan = RewritePlan(units=[a, b], extents=[
            (0x100, 0x180, a), (0x180, 0x280, b), (0x280, 0x300, a)])
        assert plan.unit_at(0x150) is a
        assert plan.unit_at(0x200) is b
        assert plan.unit_at(0x290) is a
        assert plan.unit_at(0x300) is None
