"""Backend tests: lowering differentials, spilling, peepholes."""

import pytest

from repro.asm import assemble
from repro.emu import run_executable
from repro.lower import lower_executable
from repro.lower.isel import ISel, split_critical_edges
from repro.lower.mir import MFunction, MImm, MInsn, VReg
from repro.lower.peephole import (
    copy_propagate, eliminate_dead_defs, remove_self_moves)
from repro.lower.regalloc import POOL, allocate, rewrite_spills
from repro.workloads import bootloader, corpus, pincheck


def roundtrip(exe, stdin=b""):
    lowered = lower_executable(exe)
    original = run_executable(exe, stdin=stdin)
    regenerated = run_executable(lowered, stdin=stdin)
    assert original.behavior() == regenerated.behavior(), (
        f"{original} vs {regenerated}")
    return lowered


class TestDifferential:
    @pytest.mark.parametrize("name", ["exit42", "arith", "memwrites",
                                      "call_ret", "setcc_cmov"])
    def test_corpus(self, name):
        roundtrip(corpus.build(name))

    def test_echo(self):
        roundtrip(corpus.build("echo4"), stdin=b"abcd")

    @pytest.mark.parametrize("rich", [False, True])
    def test_pincheck_both_inputs(self, rich):
        wl = pincheck.workload(rich=rich)
        exe = wl.build()
        lowered = lower_executable(exe)
        for stdin in (wl.good_input, wl.bad_input):
            want = run_executable(exe, stdin=stdin)
            got = run_executable(lowered, stdin=stdin)
            assert want.behavior() == got.behavior()

    def test_bootloader_both_inputs(self):
        wl = bootloader.workload(rich=True)
        exe = wl.build()
        lowered = lower_executable(exe)
        for stdin in (wl.good_input, wl.bad_input):
            want = run_executable(exe, stdin=stdin)
            got = run_executable(lowered, stdin=stdin)
            assert want.behavior() == got.behavior()


class TestRegisterPressure:
    def test_spilling_program(self):
        """More live values than pool registers forces spills; the
        result must still be correct."""
        # sum 12 values kept live simultaneously
        regs = ["rbx", "rcx", "rdx", "rsi", "rdi",
                "r8", "r9", "r10", "r11", "r12", "r13", "r14"]
        lines = [f"    mov {r}, {i + 1}" for i, r in enumerate(regs)]
        adds = [f"    add rax, {r}" for r in regs]
        source = (".text\n.global _start\n_start:\n    xor rax, rax\n"
                  + "\n".join(lines) + "\n" + "\n".join(adds)
                  + "\n    mov rdi, rax\n    mov rax, 60\n    syscall\n")
        exe = assemble(source)
        expected = sum(range(1, 13))
        assert run_executable(exe).exit_code == expected
        lowered = roundtrip(exe)
        assert run_executable(lowered).exit_code == expected


class TestPeephole:
    def test_copy_propagation_rewrites_uses(self):
        mfn = MFunction("f")
        from repro.lower.mir import MBlock
        block = MBlock("b")
        mfn.blocks.append(block)
        v0, v1, v2 = VReg(0), VReg(1), VReg(2)
        block.append(MInsn("mov", [v0, MImm(5)]))
        block.append(MInsn("mov", [v1, v0]))
        block.append(MInsn("add", [v2, v1]))
        copy_propagate(mfn)
        # the chain v1 -> v0 -> 5 resolves all the way to the immediate
        assert block.insns[2].operands[1] == MImm(5)

    def test_dead_def_elimination(self):
        mfn = MFunction("f")
        from repro.lower.mir import MBlock
        block = MBlock("b")
        mfn.blocks.append(block)
        used, dead = VReg(0), VReg(1)
        block.append(MInsn("mov", [used, MImm(1)]))
        block.append(MInsn("mov", [dead, MImm(2)]))
        block.append(MInsn("cmp", [used, MImm(0)]))
        removed = eliminate_dead_defs(mfn)
        assert removed == 1
        assert all(i.operands[0] is not dead for i in block.insns)

    def test_self_move_removal_post_ra(self):
        from repro.isa.registers import reg
        from repro.lower.mir import MBlock
        mfn = MFunction("f")
        block = MBlock("b")
        mfn.blocks.append(block)
        rbx = reg("rbx")
        block.append(MInsn("mov", [rbx, rbx]))
        block.append(MInsn("hlt", []))
        assert remove_self_moves(mfn) == 1
        assert len(block.insns) == 1


class TestRegalloc:
    def test_disjoint_intervals_share_registers(self):
        from repro.lower.mir import MBlock
        mfn = MFunction("f")
        block = MBlock("b")
        mfn.blocks.append(block)
        vregs = [mfn.new_vreg() for _ in range(30)]
        for vreg in vregs:  # sequential def+use: intervals don't overlap
            block.append(MInsn("mov", [vreg, MImm(1)]))
            block.append(MInsn("cmp", [vreg, MImm(0)]))
        block.append(MInsn("hlt", []))
        allocation = allocate(mfn)
        assert allocation.frame_slots == 0  # everything fits the pool
        used = set(allocation.assignment.values())
        assert used <= set(POOL)

    def test_overlapping_intervals_spill(self):
        from repro.lower.mir import MBlock
        mfn = MFunction("f")
        block = MBlock("b")
        mfn.blocks.append(block)
        vregs = [mfn.new_vreg() for _ in range(len(POOL) + 3)]
        for vreg in vregs:
            block.append(MInsn("mov", [vreg, MImm(1)]))
        accumulator = mfn.new_vreg()
        block.append(MInsn("mov", [accumulator, MImm(0)]))
        for vreg in vregs:  # all simultaneously live here
            block.append(MInsn("add", [accumulator, vreg]))
        block.append(MInsn("hlt", []))
        allocation = allocate(mfn)
        assert allocation.frame_slots >= 3
        rewrite_spills(mfn, allocation)  # must not run out of scratch
