"""Emitter unit tests: syscall parallel moves, section pinning."""

import pytest

from repro.asm import assemble
from repro.asm.source import Program
from repro.emu import run_executable
from repro.errors import LinkError
from repro.isa.registers import reg
from repro.lower.emit import Emitter
from repro.lower.mir import MBlock, MFunction, MImm, MInsn


def emitter_for(mfn):
    original = assemble("""
    .text
    .global _start
    _start:
        mov rax, 60
        mov rdi, 0
        syscall
    """)
    return Emitter(mfn, frame_slots=0, original=original)


def run_mir(mfn, stdin=b""):
    program = emitter_for(mfn).emit()
    return run_executable(assemble(program), stdin=stdin)


class TestSyscallParallelMoves:
    def _exit_syscall(self, block, code_source):
        rax = reg("rax")
        block.append(MInsn("syscall",
                           [rax, MImm(60), code_source, MImm(0),
                            MImm(0)]))
        block.append(MInsn("hlt", []))

    def test_plain_immediates(self):
        mfn = MFunction("f")
        block = MBlock("entry")
        mfn.blocks.append(block)
        self._exit_syscall(block, MImm(31))
        assert run_mir(mfn).exit_code == 31

    def test_argument_in_target_register(self):
        """exit code sourced from rdi itself: the expansion must not
        clobber it while loading rax."""
        mfn = MFunction("f")
        block = MBlock("entry")
        mfn.blocks.append(block)
        rdi = reg("rdi")
        block.append(MInsn("mov", [rdi, MImm(55)]))
        self._exit_syscall(block, rdi)
        assert run_mir(mfn).exit_code == 55

    def test_swapped_arguments_cycle(self):
        """rax <- rdi while rdi <- rax forms a cycle the emitter must
        break through rcx."""
        mfn = MFunction("f")
        block = MBlock("entry")
        mfn.blocks.append(block)
        rax, rdi = reg("rax"), reg("rdi")
        block.append(MInsn("mov", [rax, MImm(44)]))   # future exit code
        block.append(MInsn("mov", [rdi, MImm(60)]))   # future sysno
        block.append(MInsn("syscall",
                           [rax, rdi, rax, MImm(0), MImm(0)]))
        block.append(MInsn("hlt", []))
        assert run_mir(mfn).exit_code == 44


class TestSectionPinning:
    def test_pinned_sections_keep_addresses(self):
        program = Program()
        program.text_base = 0x480000
        items = program.items(".text")
        from repro.asm.source import InsnStmt, LabelDef
        from repro.isa.insn import Instruction, Mnemonic
        from repro.isa.operands import Imm, Reg
        items.append(LabelDef("_start"))
        items.append(InsnStmt(Instruction(
            Mnemonic.MOV, (Reg(reg("rax")), Imm(60)))))
        items.append(InsnStmt(Instruction(
            Mnemonic.MOV, (Reg(reg("rdi")), Imm(0)))))
        items.append(InsnStmt(Instruction(Mnemonic.SYSCALL, ())))
        program.items(".gdata").append(
            __import__("repro.asm.source",
                       fromlist=["DataStmt"]).DataStmt([b"payload"]))
        program.section_addresses[".gdata"] = 0x402000
        exe = assemble(program)
        assert exe.section(".text").addr == 0x480000
        assert exe.section(".gdata").addr == 0x402000

    def test_overlapping_pins_rejected(self):
        program = Program()
        from repro.asm.source import DataStmt, InsnStmt, LabelDef
        from repro.isa.insn import Instruction, Mnemonic
        program.items(".text").append(LabelDef("_start"))
        program.items(".text").append(
            InsnStmt(Instruction(Mnemonic.RET, ())))
        program.items(".a").append(DataStmt([bytes(64)]))
        program.items(".b").append(DataStmt([bytes(64)]))
        program.section_addresses[".a"] = 0x402000
        program.section_addresses[".b"] = 0x402020  # inside .a
        with pytest.raises(LinkError, match="overlap"):
            assemble(program)

    def test_lowered_binary_keeps_guest_data_addresses(self):
        from repro.lower import lower_executable
        from repro.workloads import bootloader
        wl = bootloader.workload()
        exe = wl.build()
        lowered = lower_executable(exe)
        guest_data = exe.section(".data")
        pinned = lowered.section(".guest_data")
        assert pinned.addr == guest_data.addr
        assert pinned.data[:len(guest_data.data)] == guest_data.data
