"""End-to-end hardening/evaluation on the committed ELF fixtures.

The real-binary frontier's acceptance bar: a PIE or stripped ELF
*file* — not an in-process build — flows through ``Target`` into
``harden``/``evaluate``/``compare`` with a composed per-unit
:class:`~repro.provenance.ProvenanceMap` and no ``unmapped`` baseline
points on the PIE fixture.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import EngineConfig, Target
from repro.binfmt import read_elf, write_elf
from repro.emu.machine import run_executable

FIXTURES = Path(__file__).resolve().parent / "fixtures"
PIE = FIXTURES / "bootloader_pie.elf"
STRIPPED = FIXTURES / "bootloader_stripped.elf"
GOOD = bytes.fromhex("0d141b222930373e")
BAD = bytes.fromhex("0d141b223930373f")
MARKER = b"BOOT OK"


def target_for(path):
    return Target(path, GOOD, BAD, MARKER, name=path.name)


class TestFixtureBehaviour:
    @pytest.mark.parametrize("path", [PIE, STRIPPED])
    def test_baseline_behaviour(self, path):
        exe = read_elf(path.read_bytes())
        good = run_executable(exe, stdin=GOOD)
        bad = run_executable(exe, stdin=BAD)
        assert MARKER in good.stdout and good.exit_code == 0
        assert MARKER not in bad.stdout and bad.exit_code == 1

    def test_fixtures_match_generator(self):
        sys.path.insert(0, str(FIXTURES))
        try:
            import gen_fixtures
            assert write_elf(gen_fixtures.build_pie()) == \
                PIE.read_bytes()
            assert write_elf(gen_fixtures.build_stripped()) == \
                STRIPPED.read_bytes()
        finally:
            sys.path.remove(str(FIXTURES))


class TestEvaluateOnFixtures:
    @pytest.mark.parametrize("path", [PIE, STRIPPED])
    def test_patcher_eliminates_everything(self, path):
        evaluation = target_for(path).evaluate(models=("skip",))
        diff = evaluation.diff
        census = diff.counts(model="skip")
        assert diff.baseline_points("skip") > 0
        assert census["unmapped"] == 0
        assert census["surviving"] == 0
        assert census["eliminated"] == diff.baseline_points("skip")

    def test_pie_provenance_is_composed_per_unit(self):
        evaluation = target_for(PIE).evaluate(models=("skip",))
        units = evaluation.provenance.meta.get("units")
        assert units, "provenance must carry the per-unit census"
        assert all(isinstance(c, dict) for c in units.values())

    def test_pie_hardened_output_keeps_dynamic_tables(self):
        result = target_for(PIE).harden()
        assert result.hardened.pie
        reread = read_elf(write_elf(result.hardened))
        assert reread.pie
        assert reread.dynamic_symbols
        assert reread.relocations

    def test_chunked_campaign_on_fixture(self):
        plain = target_for(PIE).campaign(("skip",))
        chunked = target_for(PIE).campaign(
            ("skip",), EngineConfig(chunk_units=True))
        assert chunked["skip"] == plain["skip"]


class TestCliSmoke:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            capture_output=True, text=True,
            cwd=str(FIXTURES.parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})

    def test_compare_pie_fixture(self):
        proc = self._run(
            "compare", str(PIE), "--good", GOOD.hex(), "--bad",
            BAD.hex(), "--marker", "BOOT OK", "--model", "skip")
        assert proc.returncode == 0, proc.stderr
        assert "unmapped=0" in proc.stdout

    def test_fault_stripped_fixture_chunked(self):
        proc = self._run(
            "fault", str(STRIPPED), "--good", GOOD.hex(), "--bad",
            BAD.hex(), "--marker", "BOOT OK", "--model", "skip",
            "--chunk-units", "-v")
        assert proc.returncode == 1  # vulnerable points exist
        assert "unit " in proc.stdout
