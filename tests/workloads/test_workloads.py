"""Workload self-checks (both minimal and rich variants)."""

import pytest

from repro.emu import run_executable
from repro.workloads import bootloader, corpus, pincheck


class TestPincheckVariants:
    @pytest.mark.parametrize("rich", [False, True])
    def test_grant_and_deny(self, rich):
        wl = pincheck.workload(rich=rich)
        exe = wl.build()
        good = run_executable(exe, stdin=wl.good_input)
        bad = run_executable(exe, stdin=wl.bad_input)
        assert wl.grant_marker in good.stdout
        assert good.exit_code == 0
        assert wl.grant_marker not in bad.stdout
        assert bad.exit_code == 1

    def test_rich_is_bigger(self):
        assert pincheck.build(rich=True).code_size() > \
            2 * pincheck.build().code_size()

    def test_rich_rejects_non_digits(self):
        wl = pincheck.workload(rich=True)
        result = run_executable(wl.build(), stdin=b"12a4")
        assert b"DENIED" in result.stdout

    def test_rich_audit_log_on_stderr(self):
        wl = pincheck.workload(rich=True)
        result = run_executable(wl.build(), stdin=wl.good_input)
        assert b"[audit] auth attempt" in result.stderr
        assert b"result=grant" in result.stderr

    def test_wrong_pin_validation(self):
        with pytest.raises(ValueError):
            pincheck.workload(pin="1234", wrong_pin="12345")


class TestBootloaderVariants:
    @pytest.mark.parametrize("rich", [False, True])
    def test_boot_and_fail(self, rich):
        wl = bootloader.workload(rich=rich)
        exe = wl.build()
        good = run_executable(exe, stdin=wl.good_input)
        bad = run_executable(exe, stdin=wl.bad_input)
        assert wl.grant_marker in good.stdout
        assert b"FAIL" in bad.stdout

    def test_rich_header_check(self):
        wl = bootloader.workload(rich=True)
        bogus = b"XX" + wl.good_input[2:]
        result = run_executable(wl.build(), stdin=bogus)
        assert b"bad image header" in result.stderr
        assert b"FAIL" in result.stdout

    def test_rich_digest_diagnostic(self):
        wl = bootloader.workload(rich=True)
        result = run_executable(wl.build(), stdin=wl.bad_input)
        assert b"[diag] digest=" in result.stderr
        # 16 hex chars + newline
        hex_part = result.stderr.split(b"digest=")[1][:17]
        assert len(hex_part) == 17
        int(hex_part[:16], 16)  # parses as hex

    def test_tamper_touches_two_bytes(self):
        wl = bootloader.workload()
        differences = sum(
            1 for a, b in zip(wl.good_input, wl.bad_input) if a != b)
        assert differences == 2

    def test_fnv_reference_vectors(self):
        # well-known FNV-1a/64 vectors
        assert bootloader.fnv1a64(b"") == 0xCBF29CE484222325
        assert bootloader.fnv1a64(b"a") == 0xAF63DC4C8601EC8C
        assert bootloader.fnv1a64(b"foobar") == 0x85944171F73967E8


class TestCorpus:
    def test_all_programs_assemble_and_run(self):
        for name in corpus.ALL:
            exe = corpus.build(name)
            result = run_executable(exe, stdin=b"abcd",
                                    max_steps=5_000)
            assert result.reason in ("exit", "max-steps"), name

    def test_gatecheck_workload_oracle(self):
        wl = corpus.workload()
        exe = wl.build()
        good = run_executable(exe, stdin=wl.good_input)
        bad = run_executable(exe, stdin=wl.bad_input)
        assert wl.grant_marker in good.stdout
        assert good.exit_code == 0
        assert wl.grant_marker not in bad.stdout
        assert bad.exit_code == 1

    def test_gatecheck_rejects_short_read(self):
        wl = corpus.workload()
        result = run_executable(wl.build(), stdin=b"G")
        assert wl.grant_marker not in result.stdout
