"""Golden-byte tests for the encoder against GNU as reference encodings."""

import pytest

from repro.errors import EncodingError
from repro.isa import Cond, Imm, Mem, Mnemonic, Reg, encode, reg
from repro.isa.insn import insn
from repro.isa.registers import RIP

RAX = Reg(reg("rax"))
RBX = Reg(reg("rbx"))
RCX = Reg(reg("rcx"))
RSP = Reg(reg("rsp"))
RBP = Reg(reg("rbp"))
R8 = Reg(reg("r8"))
R13 = Reg(reg("r13"))
CL = Reg(reg("cl"))
SIL = Reg(reg("sil"))
EAX = Reg(reg("eax"))


def b(*values):
    return bytes(values)


class TestMovEncodings:
    def test_mov_reg_reg(self):
        assert encode(insn(Mnemonic.MOV, RAX, RBX)) == b(0x48, 0x89, 0xD8)

    def test_mov_reg_mem_disp8(self):
        # mov rax, [rbx+4] -> 48 8B 43 04  (Table I original)
        memop = Mem(base=reg("rbx"), disp=4, size=8)
        assert encode(insn(Mnemonic.MOV, RAX, memop)) == b(0x48, 0x8B, 0x43, 0x04)

    def test_mov_mem_reg(self):
        memop = Mem(base=reg("rbx"), disp=4, size=8)
        assert encode(insn(Mnemonic.MOV, memop, RAX)) == b(0x48, 0x89, 0x43, 0x04)

    def test_mov_r64_imm32(self):
        assert encode(insn(Mnemonic.MOV, RAX, Imm(1))) == b(
            0x48, 0xC7, 0xC0, 0x01, 0x00, 0x00, 0x00)

    def test_movabs(self):
        code = encode(insn(Mnemonic.MOV, RAX, Imm(0x1122334455667788)))
        assert code == b(0x48, 0xB8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33,
                         0x22, 0x11)

    def test_mov_forced_imm64(self):
        code = encode(insn(Mnemonic.MOV, RAX, Imm(0x10, 8)))
        assert code[:2] == b(0x48, 0xB8)
        assert len(code) == 10

    def test_mov_r32_imm32(self):
        assert encode(insn(Mnemonic.MOV, EAX, Imm(7))) == b(
            0xB8, 0x07, 0x00, 0x00, 0x00)

    def test_mov_rip_relative(self):
        # mov rax, [rip+0x100] -> 48 8B 05 00 01 00 00
        memop = Mem(base=RIP, disp=0x100, size=8)
        assert encode(insn(Mnemonic.MOV, RAX, memop)) == b(
            0x48, 0x8B, 0x05, 0x00, 0x01, 0x00, 0x00)

    def test_mov_extended_regs(self):
        # mov r8, r13 -> 4D 89 E8
        assert encode(insn(Mnemonic.MOV, R8, R13)) == b(0x4D, 0x89, 0xE8)

    def test_mov_byte_with_sil_needs_rex(self):
        code = encode(insn(Mnemonic.MOV, SIL, CL))
        assert code == b(0x40, 0x88, 0xCE)


class TestMemoryForms:
    def test_rsp_base_needs_sib(self):
        # cmp rbx, [rsp] -> 48 3B 1C 24  (Table II pattern)
        memop = Mem(base=reg("rsp"), size=8)
        assert encode(insn(Mnemonic.CMP, RBX, memop)) == b(0x48, 0x3B, 0x1C, 0x24)

    def test_rbp_base_needs_disp(self):
        # mov rax, [rbp] -> 48 8B 45 00
        memop = Mem(base=reg("rbp"), size=8)
        assert encode(insn(Mnemonic.MOV, RAX, memop)) == b(0x48, 0x8B, 0x45, 0x00)

    def test_r13_base_needs_disp(self):
        memop = Mem(base=reg("r13"), size=8)
        assert encode(insn(Mnemonic.MOV, RAX, memop)) == b(0x49, 0x8B, 0x45, 0x00)

    def test_index_scale(self):
        # mov rax, [rbx+rcx*8+16] -> 48 8B 44 CB 10
        memop = Mem(base=reg("rbx"), index=reg("rcx"), scale=8, disp=16, size=8)
        assert encode(insn(Mnemonic.MOV, RAX, memop)) == b(0x48, 0x8B, 0x44, 0xCB, 0x10)

    def test_lea_red_zone_skip(self):
        # lea rsp, [rsp-128] -> 48 8D 64 24 80  (Table II red zone)
        memop = Mem(base=reg("rsp"), disp=-128, size=8)
        assert encode(insn(Mnemonic.LEA, RSP, memop)) == b(0x48, 0x8D, 0x64, 0x24, 0x80)

    def test_absolute_disp32(self):
        memop = Mem(disp=0x601000, size=8)
        assert encode(insn(Mnemonic.MOV, RAX, memop)) == b(
            0x48, 0x8B, 0x04, 0x25, 0x00, 0x10, 0x60, 0x00)


class TestStackAndFlags:
    def test_push_pop(self):
        assert encode(insn(Mnemonic.PUSH, RBX)) == b(0x53)
        assert encode(insn(Mnemonic.POP, RBX)) == b(0x5B)
        assert encode(insn(Mnemonic.PUSH, R8)) == b(0x41, 0x50)

    def test_pushfq_popfq(self):
        assert encode(insn(Mnemonic.PUSHFQ)) == b(0x9C)
        assert encode(insn(Mnemonic.POPFQ)) == b(0x9D)


class TestControlFlow:
    def test_jmp_rel32(self):
        assert encode(insn(Mnemonic.JMP, Imm(0x10))) == b(
            0xE9, 0x10, 0x00, 0x00, 0x00)

    def test_je_rel32(self):
        assert encode(insn(Mnemonic.JCC, Imm(0x10), cond=Cond.E)) == b(
            0x0F, 0x84, 0x10, 0x00, 0x00, 0x00)

    def test_call_rel32(self):
        assert encode(insn(Mnemonic.CALL, Imm(-5))) == b(
            0xE8, 0xFB, 0xFF, 0xFF, 0xFF)

    def test_ret(self):
        assert encode(insn(Mnemonic.RET)) == b(0xC3)

    def test_setcc(self):
        # setb cl -> 0F 92 C1  (Table III "set cl")
        assert encode(insn(Mnemonic.SETCC, CL, cond=Cond.B)) == b(0x0F, 0x92, 0xC1)

    def test_indirect_call(self):
        assert encode(insn(Mnemonic.CALL, RAX.register and Reg(reg("rax")))) == b(
            0xFF, 0xD0)


class TestAluAndMisc:
    def test_cmp_imm8(self):
        # cmp cl, 0 -> 80 F9 00  (Table III)
        assert encode(insn(Mnemonic.CMP, CL, Imm(0))) == b(0x80, 0xF9, 0x00)

    def test_cmp_imm32(self):
        assert encode(insn(Mnemonic.CMP, RAX, Imm(0x1000))) == b(
            0x48, 0x81, 0xF8, 0x00, 0x10, 0x00, 0x00)

    def test_cmp_imm8_sign_extended(self):
        assert encode(insn(Mnemonic.CMP, RAX, Imm(5))) == b(0x48, 0x83, 0xF8, 0x05)

    def test_xor_reg_reg(self):
        assert encode(insn(Mnemonic.XOR, RAX, RAX)) == b(0x48, 0x31, 0xC0)

    def test_imul(self):
        assert encode(insn(Mnemonic.IMUL, RAX, RBX)) == b(0x48, 0x0F, 0xAF, 0xC3)

    def test_movzx(self):
        assert encode(insn(Mnemonic.MOVZX, RAX, CL)) == b(0x48, 0x0F, 0xB6, 0xC1)

    def test_shl_imm(self):
        assert encode(insn(Mnemonic.SHL, RAX, Imm(5))) == b(0x48, 0xC1, 0xE0, 0x05)

    def test_syscall(self):
        assert encode(insn(Mnemonic.SYSCALL)) == b(0x0F, 0x05)

    def test_fixed_rejects_operands(self):
        with pytest.raises(EncodingError):
            encode(insn(Mnemonic.RET, RAX))

    def test_size_mismatch_rejected(self):
        with pytest.raises(EncodingError):
            encode(insn(Mnemonic.MOV, RAX, CL))
