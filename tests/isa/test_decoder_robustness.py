"""Decoder robustness: arbitrary bytes either decode or raise cleanly.

The faulter feeds mutated encodings straight into the decoder, so any
byte soup must produce either an Instruction or DecodingError — never
IndexError/KeyError/ValueError.  This is the property that makes the
single-bit-flip model safe to run exhaustively.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.errors import DecodingError
from repro.isa import decode, encode
from repro.isa.encoder import encoded_length

from tests.isa.test_roundtrip import any_instruction


@given(st.binary(min_size=1, max_size=15))
@settings(max_examples=2000, deadline=None)
def test_random_bytes_decode_or_raise(blob):
    try:
        insn = decode(blob, 0, 0x401000)
    except DecodingError:
        return
    assert 1 <= insn.length <= len(blob)
    assert insn.raw == blob[:insn.length]


@given(any_instruction(), st.integers(0, 14 * 8 - 1))
@settings(max_examples=1000, deadline=None)
def test_bitflips_of_valid_encodings(instruction, bit):
    code = bytearray(encode(instruction) + bytes(15))
    if bit >= len(code) * 8:
        return
    code[bit // 8] ^= 1 << (bit % 8)
    try:
        mutated = decode(bytes(code), 0, 0x401000)
    except DecodingError:
        return
    # a successfully decoded mutant must re-encode without crashing
    # (unless it used a non-canonical form, which re-encodes differently
    # but must still not raise unexpected exception types)
    from repro.errors import EncodingError
    try:
        encode(mutated)
    except EncodingError:
        pass


@given(any_instruction())
@settings(max_examples=300, deadline=None)
def test_encoded_length_matches_encode(instruction):
    assert encoded_length(instruction) == len(encode(instruction))
