"""Property tests: every encodable instruction decodes back to itself."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.isa import Cond, Imm, Mem, Mnemonic, Reg, decode, encode, reg
from repro.isa.insn import Instruction, insn
from repro.isa.registers import RIP, all_gpr64, by_code, sub_register

GPR64 = all_gpr64()


def regs(size):
    return st.sampled_from([Reg(sub_register(r, size)) for r in GPR64])


def mems(size):
    bases = st.sampled_from(GPR64)
    indexes = st.sampled_from([r for r in GPR64 if r.name != "rsp"])
    disps = st.one_of(
        st.integers(-128, 127),
        st.integers(-(1 << 31), (1 << 31) - 1),
    )

    def build(base, index, scale, disp, shape):
        if shape == "rip":
            return Mem(base=RIP, disp=disp, size=size)
        if shape == "abs":
            return Mem(disp=disp, size=size)
        if shape == "base":
            return Mem(base=base, disp=disp, size=size)
        if shape == "base+index":
            return Mem(base=base, index=index, scale=scale, disp=disp,
                       size=size)
        return Mem(index=index, scale=scale, disp=disp, size=size)

    return st.builds(
        build,
        bases,
        indexes,
        st.sampled_from([1, 2, 4, 8]),
        disps,
        st.sampled_from(["rip", "abs", "base", "base+index", "index"]),
    )


def imm(bits, size=0):
    half = 1 << (bits - 1)
    return st.builds(Imm, st.integers(-half, half - 1), st.just(size))


def alu_instructions():
    mnemos = st.sampled_from([Mnemonic.ADD, Mnemonic.SUB, Mnemonic.XOR,
                              Mnemonic.AND, Mnemonic.OR, Mnemonic.CMP])
    size = st.sampled_from([1, 4, 8])

    @st.composite
    def build(draw):
        m = draw(mnemos)
        s = draw(size)
        form = draw(st.sampled_from(["rm_r", "r_m", "m_r", "rm_imm"]))
        if form == "rm_r":
            return insn(m, draw(regs(s)), draw(regs(s)))
        if form == "r_m":
            return insn(m, draw(regs(s)), draw(mems(s)))
        if form == "m_r":
            return insn(m, draw(mems(s)), draw(regs(s)))
        dst = draw(st.one_of(regs(s), mems(s)))
        immediate = draw(imm(8 if s == 1 else 32))
        return insn(m, dst, immediate)

    return build()


def mov_instructions():
    size = st.sampled_from([1, 4, 8])

    @st.composite
    def build(draw):
        s = draw(size)
        form = draw(st.sampled_from(["rr", "rm", "mr", "ri", "mi", "movabs"]))
        if form == "rr":
            return insn(Mnemonic.MOV, draw(regs(s)), draw(regs(s)))
        if form == "rm":
            return insn(Mnemonic.MOV, draw(regs(s)), draw(mems(s)))
        if form == "mr":
            return insn(Mnemonic.MOV, draw(mems(s)), draw(regs(s)))
        if form == "ri":
            bits = 8 if s == 1 else 32
            return insn(Mnemonic.MOV, draw(regs(s)), draw(imm(bits)))
        if form == "mi":
            bits = 8 if s == 1 else 32
            return insn(Mnemonic.MOV, draw(mems(s)), draw(imm(bits)))
        return insn(Mnemonic.MOV, draw(regs(8)), draw(imm(64, 8)))

    return build()


def misc_instructions():
    conds = st.sampled_from(list(Cond))

    @st.composite
    def build(draw):
        kind = draw(st.sampled_from(
            ["push", "pop", "pushimm", "lea", "jmp", "jcc", "call", "ret",
             "setcc", "cmov", "movzx", "imul", "shift", "unary", "incdec",
             "test", "fixed", "indirect"]))
        if kind == "push":
            return insn(Mnemonic.PUSH, draw(regs(8)))
        if kind == "pop":
            return insn(Mnemonic.POP, draw(regs(8)))
        if kind == "pushimm":
            return insn(Mnemonic.PUSH, draw(imm(32)))
        if kind == "lea":
            return insn(Mnemonic.LEA, draw(regs(8)), draw(mems(8)))
        if kind == "jmp":
            return insn(Mnemonic.JMP, draw(imm(32)))
        if kind == "jcc":
            return insn(Mnemonic.JCC, draw(imm(32)), cond=draw(conds))
        if kind == "call":
            return insn(Mnemonic.CALL, draw(imm(32)))
        if kind == "ret":
            return insn(Mnemonic.RET)
        if kind == "setcc":
            return insn(Mnemonic.SETCC, draw(regs(1)), cond=draw(conds))
        if kind == "cmov":
            s = draw(st.sampled_from([4, 8]))
            return insn(Mnemonic.CMOVCC, draw(regs(s)),
                        draw(st.one_of(regs(s), mems(s))), cond=draw(conds))
        if kind == "movzx":
            s = draw(st.sampled_from([4, 8]))
            return insn(Mnemonic.MOVZX, draw(regs(s)),
                        draw(st.one_of(regs(1), mems(1))))
        if kind == "imul":
            s = draw(st.sampled_from([4, 8]))
            return insn(Mnemonic.IMUL, draw(regs(s)),
                        draw(st.one_of(regs(s), mems(s))))
        if kind == "shift":
            m = draw(st.sampled_from([Mnemonic.SHL, Mnemonic.SHR,
                                      Mnemonic.SAR]))
            s = draw(st.sampled_from([1, 4, 8]))
            amount = draw(st.one_of(
                st.builds(Imm, st.integers(0, 63), st.just(1)),
                st.just(Reg(reg("cl"))),
            ))
            return insn(m, draw(st.one_of(regs(s), mems(s))), amount)
        if kind == "unary":
            m = draw(st.sampled_from([Mnemonic.NEG, Mnemonic.NOT]))
            s = draw(st.sampled_from([1, 4, 8]))
            return insn(m, draw(st.one_of(regs(s), mems(s))))
        if kind == "incdec":
            m = draw(st.sampled_from([Mnemonic.INC, Mnemonic.DEC]))
            s = draw(st.sampled_from([1, 4, 8]))
            return insn(m, draw(st.one_of(regs(s), mems(s))))
        if kind == "test":
            s = draw(st.sampled_from([1, 4, 8]))
            src = draw(st.one_of(regs(s),
                                 st.just(None)))
            dst = draw(st.one_of(regs(s), mems(s)))
            if src is None:
                return insn(Mnemonic.TEST, dst,
                            draw(imm(8 if s == 1 else 32)))
            return insn(Mnemonic.TEST, dst, src)
        if kind == "indirect":
            m = draw(st.sampled_from([Mnemonic.JMP, Mnemonic.CALL]))
            return insn(m, draw(st.one_of(regs(8), mems(8))))
        m = draw(st.sampled_from([Mnemonic.NOP, Mnemonic.SYSCALL,
                                  Mnemonic.HLT, Mnemonic.INT3,
                                  Mnemonic.UD2, Mnemonic.PUSHFQ,
                                  Mnemonic.POPFQ]))
        return insn(m)

    return build()


def any_instruction():
    return st.one_of(alu_instructions(), mov_instructions(),
                     misc_instructions())


def semantically_equal(a: Instruction, b: Instruction) -> bool:
    """Compare ignoring encoding-size annotations on immediates."""
    if a.mnemonic is not b.mnemonic or a.cond is not b.cond:
        return False
    if len(a.operands) != len(b.operands):
        return False
    for x, y in zip(a.operands, b.operands):
        if isinstance(x, Imm) != isinstance(y, Imm):
            return False
        if isinstance(x, Imm):
            if x.value != y.value:
                return False
        elif x != y:
            return False
    return True


@given(any_instruction())
@settings(max_examples=800, deadline=None)
def test_encode_decode_roundtrip(instruction):
    code = encode(instruction)
    decoded = decode(code)
    assert decoded.length == len(code)
    assert semantically_equal(instruction, decoded), (
        f"{instruction} -> {code.hex()} -> {decoded}")


@given(any_instruction())
@settings(max_examples=300, deadline=None)
def test_reencode_is_stable(instruction):
    """decode(encode(x)) re-encodes to the same bytes (canonical form)."""
    code = encode(instruction)
    decoded = decode(code)
    assert encode(decoded) == code
