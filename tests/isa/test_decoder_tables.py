"""Byte-exact decoder coverage for encodings the encoder never emits.

Single-bit flips reach these alternate encodings (rel8 jumps, byte-form
ALU, accumulator-immediate shortcuts, shift-by-one), so the decoder and
emulator must handle them even though the assembler's canonical output
does not use them.
"""

import pytest

from repro.errors import DecodingError
from repro.isa import Mnemonic, decode
from repro.isa.cond import Cond
from repro.isa.operands import Imm, Mem, Reg


def b(*values):
    return bytes(values)


class TestAlternateEncodings:
    def test_rel8_jmp(self):
        insn = decode(b(0xEB, 0x10), 0, 0x1000)
        assert insn.mnemonic is Mnemonic.JMP
        assert insn.branch_target() == 0x1012

    def test_rel8_jcc(self):
        insn = decode(b(0x74, 0xFE), 0, 0x1000)  # je $-2 (self loop)
        assert insn.mnemonic is Mnemonic.JCC
        assert insn.cond is Cond.E
        assert insn.branch_target() == 0x1000

    def test_accumulator_imm_shortcuts(self):
        # 3C ib: cmp al, imm8
        insn = decode(b(0x3C, 0x41))
        assert insn.mnemonic is Mnemonic.CMP
        assert insn.operands[0].register.name == "al"
        assert insn.operands[1].value == 0x41
        # 05 id: add eax, imm32
        insn = decode(b(0x05, 0x01, 0x00, 0x00, 0x00))
        assert insn.mnemonic is Mnemonic.ADD
        assert insn.operands[0].register.name == "eax"

    def test_b0_byte_mov(self):
        insn = decode(b(0xB0, 0x7F))  # mov al, 0x7f
        assert insn.mnemonic is Mnemonic.MOV
        assert insn.operands[0].register.name == "al"

    def test_shift_by_one_form(self):
        insn = decode(b(0x48, 0xD1, 0xE0))  # shl rax, 1
        assert insn.mnemonic is Mnemonic.SHL
        assert insn.operands[1].value == 1

    def test_shift_by_cl_form(self):
        insn = decode(b(0x48, 0xD3, 0xE8))  # shr rax, cl
        assert insn.mnemonic is Mnemonic.SHR
        assert insn.operands[1].register.name == "cl"

    def test_push_pop_memory(self):
        insn = decode(b(0xFF, 0x33))  # push qword ptr [rbx]
        assert insn.mnemonic is Mnemonic.PUSH
        assert isinstance(insn.operands[0], Mem)
        insn = decode(b(0x8F, 0x03))  # pop qword ptr [rbx]
        assert insn.mnemonic is Mnemonic.POP

    def test_indirect_jmp_through_memory(self):
        insn = decode(b(0xFF, 0x23))  # jmp qword ptr [rbx]
        assert insn.mnemonic is Mnemonic.JMP
        assert isinstance(insn.operands[0], Mem)
        assert insn.branch_target() is None


class TestRejections:
    @pytest.mark.parametrize("blob", [
        b(0x66, 0x90),         # operand-size prefix
        b(0xF0, 0x90),         # lock prefix
        b(0x0F, 0xA2),         # cpuid (outside subset)
        b(0xFF, 0x38),         # FF /7 undefined
        b(0x8F, 0x48),         # 8F /1 undefined
        b(0xD1, 0x30),         # shift group /6 undefined
        b(0x48,),              # lone REX
    ])
    def test_unsupported(self, blob):
        with pytest.raises(DecodingError):
            decode(blob)

    def test_high_byte_registers_rejected(self):
        # 88 E0 = mov al, ah without REX: ah is outside the subset
        with pytest.raises(DecodingError):
            decode(b(0x88, 0xE0))

    def test_rex_turns_code_4_into_spl(self):
        insn = decode(b(0x40, 0x88, 0xE0))  # mov al, spl with REX
        assert insn.operands[1].register.name == "spl"

    def test_truncated_instruction(self):
        with pytest.raises(DecodingError):
            decode(b(0x48, 0x8B))  # mov r64, r/m64 with no ModRM


class TestEmulatorRunsAlternateForms:
    def test_rel8_loop_executes(self):
        """A hand-encoded rel8 loop must run on the emulator."""
        from repro.binfmt.image import Executable, Section
        from repro.emu import run_executable
        # mov ecx, 3; dec ecx; jne -3 ; mov eax,60; xor edi,edi; syscall
        code = (b(0xB9, 0x03, 0x00, 0x00, 0x00) +      # mov ecx, 3
                b(0xFF, 0xC9) +                        # dec ecx
                b(0x75, 0xFC) +                        # jne rel8 -4
                b(0xB8, 0x3C, 0x00, 0x00, 0x00) +      # mov eax, 60
                b(0x31, 0xFF) +                        # xor edi, edi
                b(0x0F, 0x05))                         # syscall
        exe = Executable(entry=0x401000, sections=[
            Section(".text", 0x401000, code, flags="rx")])
        result = run_executable(exe)
        assert result.reason == "exit"
        assert result.exit_code == 0
