"""Instruction metadata (def/use) and condition-code unit tests."""

import pytest

from repro.isa import Cond, Imm, Mem, Mnemonic, Reg, reg
from repro.isa.cond import cond_from_suffix
from repro.isa.insn import insn
from repro.isa.metadata import effects
from repro.isa.registers import parent_gpr, sub_register

RAX, RBX, RCX, RSP = (reg(n) for n in ("rax", "rbx", "rcx", "rsp"))


class TestEffects:
    def test_mov_reg_reg(self):
        eff = effects(insn(Mnemonic.MOV, Reg(RAX), Reg(RBX)))
        assert RBX in eff.reads
        assert RAX in eff.writes
        assert RAX not in eff.reads

    def test_mov_load_reads_memory_and_base(self):
        memop = Mem(base=RBX, disp=8, size=8)
        eff = effects(insn(Mnemonic.MOV, Reg(RAX), memop))
        assert eff.reads_memory and not eff.writes_memory
        assert RBX in eff.reads

    def test_store_writes_memory(self):
        memop = Mem(base=RBX, size=8)
        eff = effects(insn(Mnemonic.MOV, memop, Reg(RAX)))
        assert eff.writes_memory and not eff.reads_memory

    def test_alu_reads_both(self):
        eff = effects(insn(Mnemonic.ADD, Reg(RAX), Reg(RBX)))
        assert {RAX, RBX} <= set(eff.reads)
        assert RAX in eff.writes
        assert eff.writes_flags

    def test_cmp_writes_nothing(self):
        eff = effects(insn(Mnemonic.CMP, Reg(RAX), Imm(1)))
        assert not eff.writes
        assert eff.writes_flags

    def test_push_touches_rsp_and_memory(self):
        eff = effects(insn(Mnemonic.PUSH, Reg(RBX)))
        assert RSP in eff.reads and RSP in eff.writes
        assert eff.writes_memory

    def test_jcc_reads_flags_only(self):
        eff = effects(insn(Mnemonic.JCC, Imm(0), cond=Cond.E))
        assert eff.reads_flags
        assert not eff.reads and not eff.writes

    def test_syscall_convention(self):
        eff = effects(insn(Mnemonic.SYSCALL))
        assert reg("rax") in eff.reads
        assert reg("rdi") in eff.reads
        assert reg("rcx") in eff.writes
        assert reg("r11") in eff.writes

    def test_subregister_normalized_to_parent(self):
        eff = effects(insn(Mnemonic.MOV, Reg(reg("al")), Imm(1)))
        assert reg("rax") in eff.writes

    def test_lea_does_not_read_memory(self):
        memop = Mem(base=RBX, index=RCX, scale=4, disp=8, size=8)
        eff = effects(insn(Mnemonic.LEA, Reg(RAX), memop))
        assert not eff.reads_memory
        assert {RBX, RCX} <= set(eff.reads)


class TestCondParsing:
    @pytest.mark.parametrize("suffix,expected", [
        ("e", Cond.E), ("z", Cond.E), ("ne", Cond.NE), ("nz", Cond.NE),
        ("b", Cond.B), ("c", Cond.B), ("nae", Cond.B),
        ("ae", Cond.AE), ("nb", Cond.AE), ("nc", Cond.AE),
        ("a", Cond.A), ("nbe", Cond.A), ("be", Cond.BE),
        ("l", Cond.L), ("nge", Cond.L), ("ge", Cond.GE),
        ("g", Cond.G), ("nle", Cond.G), ("le", Cond.LE),
    ])
    def test_aliases(self, suffix, expected):
        assert cond_from_suffix(suffix) is expected

    def test_unknown_suffix(self):
        with pytest.raises(KeyError):
            cond_from_suffix("xx")

    def test_all_conditions_have_distinct_encodings(self):
        assert len({c.value for c in Cond}) == 16


class TestRegisters:
    def test_sub_register_views(self):
        assert sub_register(RAX, 4).name == "eax"
        assert sub_register(RAX, 1).name == "al"
        assert sub_register(reg("r8"), 1).name == "r8b"

    def test_parent(self):
        assert parent_gpr(reg("cl")) is RCX
        assert parent_gpr(reg("r10d")).name == "r10"

    def test_rex_requirements(self):
        assert reg("sil").needs_rex_presence
        assert not reg("cl").needs_rex_presence
        assert reg("r9").needs_rex_bit
