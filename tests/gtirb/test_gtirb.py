"""GTIRB IR and CFG unit tests."""

import pytest

from repro.asm import assemble
from repro.disasm import disassemble
from repro.errors import RewriteError
from repro.gtirb import CodeBlock, DataBlock, Module, Symbol, build_cfg
from repro.gtirb.ir import GSection, InsnEntry
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm
from repro.workloads import pincheck


@pytest.fixture
def module():
    return disassemble(pincheck.build())


class TestModule:
    def test_find_instruction(self, module):
        entry_addr = 0x401000
        section, block, index = module.find_instruction(entry_addr)
        assert section.name == ".text"
        assert block.entries[index].address == entry_addr

    def test_find_missing_instruction(self, module):
        with pytest.raises(RewriteError):
            module.find_instruction(0x123456)

    def test_symbol_management(self, module):
        block = module.text().code_blocks()[0]
        symbol = module.add_symbol("my_label", block)
        assert module.symbol("my_label") is symbol
        assert symbol in module.symbols_for(block)
        with pytest.raises(RewriteError):
            module.add_symbol("my_label", block)

    def test_fresh_symbol_uniqueness(self, module):
        a = module.fresh_symbol("tmp", None)
        b = module.fresh_symbol("tmp", None)
        assert a.name != b.name

    def test_text_size_matches_encoding(self, module):
        exe = pincheck.build()
        assert module.text_size() == exe.code_size()

    def test_instruction_count(self, module):
        assert module.instruction_count() > 20


class TestBlocks:
    def test_terminator_detection(self):
        ret_block = CodeBlock(entries=[
            InsnEntry(Instruction(Mnemonic.RET, ()))])
        assert ret_block.terminator() is not None
        plain = CodeBlock(entries=[
            InsnEntry(Instruction(Mnemonic.NOP, ()))])
        assert plain.terminator() is None

    def test_data_block_sizes(self):
        data = DataBlock(items=[b"abc", b"defg"])
        assert data.byte_size() == 7
        zeros = DataBlock(zero_fill=True, zero_size=64)
        assert zeros.byte_size() == 64

    def test_entry_copy_is_independent(self):
        entry = InsnEntry(Instruction(Mnemonic.NOP, ()))
        clone = entry.copy()
        clone.protected = True
        assert not entry.protected

    def test_root_site_chain(self):
        original = InsnEntry(Instruction(Mnemonic.NOP, ()))
        derived = InsnEntry(Instruction(Mnemonic.NOP, ()),
                            origin=original)
        assert derived.root_site() is original
        assert original.root_site() is original


class TestCFG:
    def test_edge_kinds(self, module):
        cfg = build_cfg(module)
        kinds = {e.kind for e in cfg.edges}
        assert "branch" in kinds
        assert "fallthrough" in kinds

    def test_conditional_branch_has_two_successors(self, module):
        cfg = build_cfg(module)
        for block in module.text().code_blocks():
            terminator = block.terminator()
            if terminator and terminator.insn.mnemonic is Mnemonic.JCC:
                kinds = sorted(e.kind for e in cfg.successors(block))
                assert kinds == ["branch", "fallthrough"]

    def test_predecessors_inverse_of_successors(self, module):
        cfg = build_cfg(module)
        for edge in cfg.edges:
            if edge.dst is not None:
                assert edge in cfg.predecessors(edge.dst)

    def test_dot_rendering(self, module):
        dot = build_cfg(module).to_dot(module)
        assert dot.startswith("digraph")
        assert "->" in dot


class TestFunctions:
    def test_function_discovery(self):
        from repro.disasm.functions import find_functions
        from repro.workloads import corpus
        module = disassemble(corpus.build("call_ret"))
        functions = find_functions(module)
        names = {f.name for f in functions}
        assert "_start" in names
        assert "bump" in names
        total_blocks = sum(len(f.blocks) for f in functions)
        assert total_blocks == len(module.text().code_blocks())

    def test_data_pointer_roots(self):
        from repro.disasm.functions import find_functions
        from repro.workloads import corpus
        module = disassemble(corpus.build("indirect"))
        functions = find_functions(module)
        assert any(f.name == "set9" for f in functions)
