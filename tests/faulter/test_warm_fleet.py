"""Warm worker fleet: persistence, work stealing, and error relay."""

import pytest

from repro.faulter import Faulter
from repro.faulter.engine import (
    MultiprocessBackend,
    _acquire_fleet,
    resolve_backend,
    shutdown_fleet,
)
from repro.workloads import pincheck


@pytest.fixture(scope="module")
def wl():
    return pincheck.workload()


@pytest.fixture(scope="module")
def exe(wl):
    return wl.build()


def make_faulter(wl, exe):
    return Faulter(exe, wl.good_input, wl.bad_input, wl.grant_marker,
                   name=wl.name)


@pytest.fixture(scope="module")
def sequential_report(wl, exe):
    return make_faulter(wl, exe).run_campaign("skip")


class TestScheduling:
    @pytest.mark.parametrize("steal", [True, False])
    def test_matches_sequential(self, wl, exe, sequential_report,
                                steal):
        backend = MultiprocessBackend(workers=2,
                                      checkpoint_interval=16,
                                      steal=steal)
        report = make_faulter(wl, exe).run_campaign("skip",
                                                    backend=backend)
        assert report == sequential_report

    def test_small_partitions_exercise_the_queue(self, wl, exe,
                                                 sequential_report):
        # more partitions than workers: the steal queue actually queues
        backend = MultiprocessBackend(workers=2,
                                      checkpoint_interval=16,
                                      max_resident_points=4)
        report = make_faulter(wl, exe).run_campaign("skip",
                                                    backend=backend)
        assert report == sequential_report

    def test_k_fault_campaign_on_the_fleet(self, wl, exe):
        faulter = make_faulter(wl, exe)
        sequential = faulter.run_k_fault_campaign(
            "skip", k=2, samples=24, seed=7)
        fleet = make_faulter(wl, exe).run_k_fault_campaign(
            "skip", k=2, samples=24, seed=7,
            backend=MultiprocessBackend(workers=2,
                                        checkpoint_interval=16))
        assert fleet == sequential


class TestFleetLifecycle:
    def test_workers_persist_across_campaigns(self, wl, exe):
        import repro.faulter.engine as engine
        backend = MultiprocessBackend(workers=2,
                                      checkpoint_interval=16)
        make_faulter(wl, exe).run_campaign("skip", backend=backend)
        fleet = engine._FLEET
        assert fleet is not None and fleet.alive()
        pids = fleet.pids()
        make_faulter(wl, exe).run_campaign("bitflip", backend=backend)
        assert engine._FLEET is fleet
        assert fleet.pids() == pids

    def test_size_change_restarts_the_fleet(self):
        first = _acquire_fleet(2)
        assert _acquire_fleet(2) is first
        second = _acquire_fleet(3)
        assert second is not first
        assert not first.alive() or first._processes == []
        assert second.alive() and len(second.pids()) == 3

    def test_shutdown_is_idempotent(self):
        _acquire_fleet(2)
        shutdown_fleet()
        shutdown_fleet()
        import repro.faulter.engine as engine
        assert engine._FLEET is None

    def test_worker_errors_are_relayed(self):
        fleet = _acquire_fleet(2)
        epoch = fleet.new_epoch()
        fleet.submit(epoch, 0, ("not", "a", "job"))
        with pytest.raises(Exception):
            fleet.recv(epoch)
        # the worker survives its crashed job and the fleet stays up
        assert fleet.alive()

    def test_stale_epoch_results_are_dropped(self, wl, exe,
                                             sequential_report):
        fleet = _acquire_fleet(2)
        stale = fleet.new_epoch()
        fleet.submit(stale, 0, ("bad", "payload"))
        # the next campaign's epoch must discard that leftover error
        backend = MultiprocessBackend(workers=2,
                                      checkpoint_interval=16)
        report = make_faulter(wl, exe).run_campaign("skip",
                                                    backend=backend)
        assert report == sequential_report


class TestStealKnob:
    def test_resolve_accepts_steal(self):
        backend = resolve_backend(None, workers=2, steal=False)
        assert isinstance(backend, MultiprocessBackend)
        assert backend.steal is False
        assert resolve_backend("multiprocess", steal=True).steal

    def test_steal_alone_implies_multiprocess(self):
        backend = resolve_backend(None, steal=False)
        assert isinstance(backend, MultiprocessBackend)

    def test_steal_rejected_for_sequential(self):
        with pytest.raises(ValueError, match="steal"):
            resolve_backend("sequential", steal=True)

    def test_instance_conflict_rejected(self):
        backend = MultiprocessBackend(workers=2, steal=True)
        with pytest.raises(ValueError, match="steal"):
            resolve_backend(backend, steal=False)
        assert resolve_backend(backend, steal=True) is backend


def teardown_module(module):
    shutdown_fleet()
