"""Equivalence reduction: bit-identical reports, fewer executions.

The tentpole property: running a campaign over the reduced space must
reproduce the full-space report row for row — outcomes, successes,
ordering — for every fault model, on both backends, streamed or
materialized.  The certificate in ``report.meta["reduction"]`` is the
checkable record of what was elided and why, and the dense k-fault
product is where the reduction pays: the flag-stuck pair campaign
below must beat the full product by at least 5x emulated steps.
"""

import json
import pickle

import pytest

from repro.faulter import Faulter, MultiprocessBackend, SequentialBackend
from repro.faulter.models import MODELS
from repro.faulter.reduction import (
    ReducedSpace,
    ReducedTupleSpace,
    ReductionCertificate,
    plan_reduction,
)
from repro.faulter.report import CampaignReport
from repro.faulter.space import (
    ExhaustiveSpace,
    ExplicitSpace,
    KFaultProductSpace,
    ProductSpace,
    SampledSpace,
    WindowedSpace,
)
from repro.workloads import bootloader, pincheck


@pytest.fixture(scope="module")
def faulter():
    wl = pincheck.workload()
    return Faulter(wl.build(), wl.good_input, wl.bad_input,
                   wl.grant_marker, name=wl.name)


@pytest.fixture(scope="module")
def boot():
    wl = bootloader.workload(size=8)
    return Faulter(wl.build(), wl.good_input, wl.bad_input,
                   wl.grant_marker, name=wl.name)


def _pair(faulter, model, space, backend=None, **kwargs):
    """(full, reduced) reports for one campaign configuration."""
    full = faulter.engine().run(
        model, space, backend=backend, reduce=False, **kwargs)
    reduced = faulter.engine().run(
        model, space, backend=backend, reduce=True, **kwargs)
    return full, reduced


class TestBitIdentity:
    """Reduced campaigns reproduce the full report, row for row."""

    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_every_model_exhaustive(self, faulter, model):
        full, reduced = _pair(faulter, model, ExhaustiveSpace(),
                              collect_outcomes=True)
        assert reduced == full
        cert = reduced.meta["reduction"]
        assert cert["enabled"] is True
        assert cert["full_points"] == full.total_faults
        assert cert["executed_points"] <= cert["full_points"]

    @pytest.mark.parametrize("backend_factory", [
        lambda: SequentialBackend(),
        lambda: SequentialBackend(stream=False),
        lambda: SequentialBackend(checkpoint_interval=8,
                                  max_resident_points=5),
        lambda: MultiprocessBackend(workers=3),
    ], ids=["master-walk", "materialized", "checkpointed",
            "multiprocess"])
    def test_backends_and_streaming(self, faulter, backend_factory):
        full = faulter.engine().run(
            "reg-bitflip", ExhaustiveSpace(),
            backend=backend_factory(), reduce=False)
        reduced = faulter.engine().run(
            "reg-bitflip", ExhaustiveSpace(),
            backend=backend_factory(), reduce=True)
        assert reduced == full

    @pytest.mark.parametrize("space_factory", [
        lambda: WindowedSpace(indices=tuple(range(3, 40))),
        lambda: SampledSpace(samples=40, seed=7),
        lambda: KFaultProductSpace(k=2, samples=40, seed=7),
    ], ids=["windowed", "sampled", "k-fault"])
    def test_bootloader_spaces(self, boot, space_factory):
        full, reduced = _pair(boot, "skip", space_factory(),
                              collect_outcomes=True)
        assert reduced == full

    def test_reduction_actually_elides(self, faulter):
        """The exhaustive reg-bitflip campaign has dead points to
        drop — the certificate must account for them."""
        _, reduced = _pair(faulter, "reg-bitflip", ExhaustiveSpace())
        cert = ReductionCertificate(reduced.meta["reduction"])
        assert cert.executed_points < cert.full_points
        assert cert.payload["dead_points"] > 0

    def test_class_merging_stays_bit_identical(self):
        """Class merging needs >= 2 live forces in one quiet flag
        region.  The bundled workloads test their flags right after
        setting them (``cmp; jcc``), so craft a compare with a quiet
        gap before the branch and widen flag-stuck to every step —
        merging must fire and identity must still hold."""
        from repro.faulter.models import FORCEABLE_FLAGS, MODELS
        from repro.workloads.base import Workload

        class EveryStepFlagStuck(type(MODELS["flag-stuck"])):
            name = "flag-stuck-everywhere"

            def variants(self, insn, meta=None):
                return [(flag, value) for flag in FORCEABLE_FLAGS
                        for value in (0, 1)]

        wl = Workload(
            name="quietgap",
            source="""
.section .text
.global _start
_start:
    xor rax, rax              # SYS_read one byte
    xor rdi, rdi
    lea rsi, [rel buf]
    mov rdx, 1
    syscall
    mov al, byte ptr [rel buf]
    cmp al, 0x37              # expect '7'
    lea rsi, [rel msg_ok]     # quiet gap: no flag touch
    mov rdx, 3                # before the branch consumes zf
    jne deny
    mov rax, 1                # SYS_write the grant marker
    mov rdi, 1
    syscall
deny:
    mov rax, 60
    xor rdi, rdi
    syscall

.section .data
msg_ok: .ascii "OK\\n"

.section .bss
buf: .zero 1
""",
            good_input=b"7",
            bad_input=b"0",
            grant_marker=b"OK",
        )
        faulter = Faulter(wl.build(), wl.good_input, wl.bad_input,
                          wl.grant_marker, name=wl.name)
        model = EveryStepFlagStuck()
        space = SampledSpace(samples=10**6, seed=0)  # total-cap, all
        full, reduced = _pair(faulter, model, space,
                              collect_outcomes=True)
        assert reduced == full
        cert = ReductionCertificate(reduced.meta["reduction"])
        assert cert.payload["merged_points"] > 0
        assert cert.payload["class_count"] > 0


class TestProductSpeedup:
    """The acceptance criterion: a k=2 bootloader campaign with
    reduction on beats the full product space by >= 5x, with verdicts
    mapping 1:1."""

    @pytest.fixture(scope="class")
    def big_boot(self):
        wl = bootloader.workload(size=176)
        return Faulter(wl.build(), wl.good_input, wl.bad_input,
                       wl.grant_marker, name=wl.name)

    def test_flag_stuck_pairs(self, big_boot):
        ctx = big_boot.engine().context("flag-stuck")
        offsets = [step for step in range(len(ctx.trace))
                   if ctx.variants(step)]
        space = ProductSpace(k=2, indices=tuple(offsets[::9]))
        full, reduced = _pair(big_boot, "flag-stuck", space,
                              collect_outcomes=True)
        assert reduced == full
        cert = ReductionCertificate(reduced.meta["reduction"])
        assert cert.full_points == full.total_faults
        full_steps = full.meta["emulated_steps"]
        reduced_steps = reduced.meta["emulated_steps"]
        assert full_steps >= 5 * max(1, reduced_steps)


class TestReducedSpaces:
    """Reduced spaces are first-class: picklable in O(1), partitionable
    through the standard streaming machinery."""

    def test_pickle_is_population_independent(self):
        single = ReducedSpace(ExhaustiveSpace(), merge=True)
        tuples = ReducedTupleSpace(
            KFaultProductSpace(k=2, samples=10**9, seed=1),
            probes=(((3, (0,)), 17), ((9, (1,)), 40)))
        assert len(pickle.dumps(single)) < 512
        assert len(pickle.dumps(tuples)) < 512

    def test_partition_matches_enumeration_window(self, faulter):
        ctx = faulter.engine().context("skip")
        space = ReducedSpace(ExhaustiveSpace(), merge=True)
        whole = list(space.enumerate(ctx))
        assert whole  # survivors exist
        for part in space.partition(ctx, 3):
            assert list(part.enumerate(ctx)) == \
                whole[part.start:part.stop]

    def test_survivors_renumbered(self, faulter):
        ctx = faulter.engine().context("skip")
        space = ReducedSpace(ExhaustiveSpace())
        orders = [point.order for point in space.enumerate(ctx)]
        assert orders == list(range(len(orders)))


class TestCertificate:
    def test_roundtrip_through_report_json(self, faulter):
        report = faulter.run_campaign("skip")
        payload = json.loads(json.dumps(report.to_dict()))
        rebuilt = CampaignReport.from_dict(payload)
        assert rebuilt == report
        assert rebuilt.meta["reduction"] == report.meta["reduction"]
        cert = ReductionCertificate.from_dict(
            rebuilt.meta["reduction"])
        assert cert.enabled
        assert "reduction:" in cert.summary()

    def test_no_reduce_knob(self, faulter):
        off = faulter.run_campaign("skip", reduce=False)
        on = faulter.run_campaign("skip", reduce=True)
        assert off.meta["reduction"] == \
            {"enabled": False, "reason": "disabled"}
        assert on == off  # bit-identical either way
        summary = ReductionCertificate(off.meta["reduction"]).summary()
        assert summary == "reduction: off (disabled)"

    def test_unsupported_space_reason(self, faulter):
        ctx = faulter.engine().context("skip")
        points = tuple(ExhaustiveSpace().enumerate(ctx))
        report = faulter.engine().run(
            "skip", ExplicitSpace(points=points))
        meta = report.meta["reduction"]
        assert meta["enabled"] is False
        assert meta["reason"].startswith("unsupported-space")

    def test_plan_reduction_gates(self, faulter):
        ctx = faulter.engine().context("skip")
        plan, reason = plan_reduction(
            faulter, MODELS["skip"], ctx, ExhaustiveSpace())
        assert plan is not None and reason is None
        plan, reason = plan_reduction(
            faulter, MODELS["skip"], ctx, ExplicitSpace(points=()))
        assert plan is None
        assert reason.startswith("unsupported-space")


class TestCliSurface:
    def test_fault_verbose_prints_summary(self, capsys):
        from repro.cli import main

        rc = main(["fault", "pincheck", "--model", "reg-bitflip",
                   "-k", "2", "--verbose"])
        out = capsys.readouterr().out
        assert rc in (0, 1)
        assert "reduction:" in out

    def test_no_reduce_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fault", "pincheck", "--no-reduce"])
        assert args.reduce is False
        args = build_parser().parse_args(["fault", "pincheck"])
        assert args.reduce is None
