"""Faulter campaign tests against the case studies."""

import pytest

from repro.errors import ReproError
from repro.faulter import Faulter, InstructionSkip, SingleBitFlip, model_by_name
from repro.workloads import bootloader, corpus, pincheck


@pytest.fixture(scope="module")
def pincheck_faulter():
    wl = pincheck.workload()
    return Faulter(wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
                   name=wl.name)


@pytest.fixture(scope="module")
def bootloader_faulter():
    wl = bootloader.workload(size=8)
    return Faulter(wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
                   name=wl.name)


class TestBaselines:
    def test_baselines_established(self, pincheck_faulter):
        assert b"GRANTED" in pincheck_faulter.good_baseline.stdout
        assert b"DENIED" in pincheck_faulter.bad_baseline.stdout

    def test_rejects_broken_oracle(self):
        wl = pincheck.workload()
        with pytest.raises(ReproError):
            Faulter(wl.build(), wl.good_input, wl.good_input,
                    wl.grant_marker)

    def test_trace_is_nonempty(self, pincheck_faulter):
        trace = pincheck_faulter.trace()
        assert trace[0] == 0x401000
        assert len(trace) > 10


class TestSkipCampaign:
    def test_pincheck_is_vulnerable_to_skip(self, pincheck_faulter):
        report = pincheck_faulter.run_campaign("skip")
        assert report.vulnerable
        assert report.outcomes["success"] >= 1
        # the paper: vulnerabilities stem from compare/jump instructions
        mnemonics = {p.mnemonic for p in report.vulnerable_points()}
        assert mnemonics & {"cmp", "jne", "je", "jmp", "mov"}

    def test_bootloader_is_vulnerable_to_skip(self, bootloader_faulter):
        report = bootloader_faulter.run_campaign("skip")
        assert report.vulnerable

    def test_skip_fault_count_equals_trace_length(self, pincheck_faulter):
        report = pincheck_faulter.run_campaign("skip")
        assert report.total_faults == report.trace_length

    def test_outcome_counts_are_consistent(self, pincheck_faulter):
        report = pincheck_faulter.run_campaign("skip")
        assert sum(report.outcomes.values()) == report.total_faults


class TestBitFlipCampaign:
    def test_pincheck_is_vulnerable_to_bitflip(self, pincheck_faulter):
        report = pincheck_faulter.run_campaign("bitflip")
        assert report.vulnerable
        # bit flips inject many more faults than skips
        assert report.total_faults > report.trace_length * 8

    def test_bitflips_produce_crashes(self, pincheck_faulter):
        report = pincheck_faulter.run_campaign("bitflip")
        assert report.outcomes["crash"] > 0

    def test_trace_window_restricts_faults(self, pincheck_faulter):
        full = pincheck_faulter.run_campaign("bitflip")
        windowed = pincheck_faulter.run_campaign(
            "bitflip", trace_window=range(5))
        assert windowed.total_faults < full.total_faults


class TestDeterminism:
    def test_campaign_is_deterministic(self, pincheck_faulter):
        first = pincheck_faulter.run_campaign("skip")
        second = pincheck_faulter.run_campaign("skip")
        assert first.successes == second.successes
        assert first.outcomes == second.outcomes

    def test_journal_leaves_master_clean(self, pincheck_faulter):
        # running a campaign must not corrupt subsequent baselines
        pincheck_faulter.run_campaign("skip")
        good = pincheck_faulter._run(pincheck_faulter.good_input)
        assert pincheck_faulter.grant_marker in good.stdout


class TestModels:
    def test_model_lookup(self):
        assert model_by_name("skip").name == "skip"
        assert model_by_name("bitflip").name == "bitflip"
        with pytest.raises(KeyError):
            model_by_name("nope")

    def test_stuck0_model_runs(self, pincheck_faulter):
        report = pincheck_faulter.run_campaign("stuck0")
        assert report.total_faults > 0

    def test_report_rendering(self, pincheck_faulter):
        report = pincheck_faulter.run_campaign("skip")
        text = report.summary()
        assert "vulnerable points" in text
        assert report.to_dict()["model"] == "skip"
