"""Streamed vs. materialized execution: bit-identical reports.

The tentpole property of the streaming engine: pulling the fault
space through a bounded reorder window (and shipping workers
declarative partitions instead of point dumps) must not change a
single report row relative to the fully materialized path — for every
space kind, across partition counts, on both backends — while peak
resident fault points stay bounded by the window size.
"""

import math
import pickle

import pytest

from repro.faulter import Faulter, MultiprocessBackend, SequentialBackend
from repro.faulter.engine import resolve_backend
from repro.faulter.space import (
    ExhaustiveSpace,
    KFaultProductSpace,
    SampledSpace,
    SpacePartition,
    WindowedSpace,
)
from repro.workloads import bootloader, pincheck

SPACES = {
    "exhaustive": lambda: ExhaustiveSpace(),
    "windowed": lambda: WindowedSpace(indices=tuple(range(3, 17))),
    "sampled": lambda: SampledSpace(samples=60, seed=11),
    "k-fault": lambda: KFaultProductSpace(k=2, samples=60, seed=11),
}

PARTITION_COUNTS = (1, 3, 7)


@pytest.fixture(scope="module")
def wl():
    return pincheck.workload()


@pytest.fixture(scope="module")
def faulter(wl):
    return Faulter(wl.build(), wl.good_input, wl.bad_input,
                   wl.grant_marker, name=wl.name)


def _materialized(faulter, model, space):
    """The legacy O(population) path: one window over everything."""
    return faulter.engine().run(
        model, space, backend=SequentialBackend(stream=False))


def _window_for(faulter, model, space, parts):
    total = space.count(faulter.engine().context(model))
    return max(1, math.ceil(total / parts))


class TestStreamedEqualsMaterialized:
    """Differential suite over every space kind x partition count."""

    @pytest.mark.parametrize("parts", PARTITION_COUNTS)
    @pytest.mark.parametrize("kind", sorted(SPACES))
    def test_sequential(self, faulter, kind, parts):
        space = SPACES[kind]()
        baseline = _materialized(faulter, "skip", space)
        window = _window_for(faulter, "skip", space, parts)
        streamed = faulter.engine().run(
            "skip", space,
            backend=SequentialBackend(max_resident_points=window))
        assert streamed == baseline
        assert streamed.meta["peak_resident_points"] <= window
        assert streamed.meta["stream"] is True

    @pytest.mark.parametrize("parts", PARTITION_COUNTS)
    @pytest.mark.parametrize("kind", sorted(SPACES))
    def test_multiprocess(self, faulter, kind, parts):
        space = SPACES[kind]()
        baseline = _materialized(faulter, "skip", space)
        streamed = faulter.engine().run(
            "skip", space,
            backend=MultiprocessBackend(workers=parts))
        assert streamed == baseline

    @pytest.mark.parametrize("kind", sorted(SPACES))
    def test_sequential_checkpointed(self, faulter, kind):
        """Streaming composes with incremental checkpoint replay."""
        space = SPACES[kind]()
        baseline = _materialized(faulter, "skip", space)
        streamed = faulter.engine().run(
            "skip", space,
            backend=SequentialBackend(checkpoint_interval=8,
                                      max_resident_points=5))
        assert streamed == baseline
        assert streamed.meta["peak_resident_points"] <= 5

    def test_bitflip_peak_resident_bounded(self, faulter):
        """The acceptance property on the big space: peak resident
        fault points <= the configured window, report unchanged."""
        baseline = _materialized(faulter, "bitflip", ExhaustiveSpace())
        window = 16
        streamed = faulter.engine().run(
            "bitflip", ExhaustiveSpace(),
            backend=SequentialBackend(max_resident_points=window))
        assert streamed == baseline
        assert streamed.total_faults > window  # many windows exercised
        assert streamed.meta["peak_resident_points"] <= window


class TestBundledWorkloads:
    """Bit-identity on both bundled workloads (acceptance criterion)."""

    def test_pincheck_both_backends(self, faulter):
        baseline = _materialized(faulter, "bitflip", ExhaustiveSpace())
        sequential = faulter.engine().run(
            "bitflip", ExhaustiveSpace(),
            backend=SequentialBackend(max_resident_points=64))
        parallel = faulter.engine().run(
            "bitflip", ExhaustiveSpace(),
            backend=MultiprocessBackend(workers=3))
        assert sequential == baseline
        assert parallel == baseline

    def test_bootloader_both_backends(self):
        wl = bootloader.workload(size=8)
        faulter = Faulter(wl.build(), wl.good_input, wl.bad_input,
                          wl.grant_marker, name=wl.name)
        baseline = _materialized(faulter, "skip", ExhaustiveSpace())
        sequential = faulter.engine().run(
            "skip", ExhaustiveSpace(),
            backend=SequentialBackend(max_resident_points=32))
        parallel = faulter.engine().run(
            "skip", ExhaustiveSpace(),
            backend=MultiprocessBackend(workers=3))
        assert sequential == baseline
        assert parallel == baseline
        assert sequential.meta["peak_resident_points"] <= 32


class TestPartitionProtocol:
    """Partitions are declarative sub-specs, not point dumps."""

    def test_partitions_are_window_specs(self, faulter):
        ctx = faulter.engine().context("bitflip")
        space = ExhaustiveSpace()
        parts = space.partition(ctx, 4)
        assert all(isinstance(p, SpacePartition) for p in parts)
        assert parts[0].start == 0
        assert parts[-1].stop == space.count(ctx)
        # contiguous, non-overlapping enumeration-order windows
        for before, after in zip(parts, parts[1:]):
            assert before.stop == after.start

    def test_partition_pickle_is_o1(self, faulter):
        """Shipping a partition costs the same whether it spans ten
        points or the whole population."""
        ctx = faulter.engine().context("bitflip")
        small = SpacePartition(ExhaustiveSpace(), 0, 10)
        huge = SpacePartition(ExhaustiveSpace(), 0, 10**9)
        assert len(pickle.dumps(huge)) <= len(pickle.dumps(small)) + 8
        assert len(pickle.dumps(huge)) < 256
        assert ctx.population() > 0  # the context stays process-local

    def test_partition_reenumerates_its_window(self, faulter):
        ctx = faulter.engine().context("skip")
        space = SampledSpace(samples=40, seed=9)
        whole = list(space.enumerate(ctx))
        for part in space.partition(ctx, 3):
            assert list(part.enumerate(ctx)) == \
                whole[part.start:part.stop]

    def test_partition_inherits_cap_policy(self, faulter):
        ctx = faulter.engine().context("skip")
        sampled = SampledSpace(samples=10, seed=0)
        exhaustive = ExhaustiveSpace()
        assert sampled.partition(ctx, 2)[0].cap_policy == \
            sampled.cap_policy
        assert exhaustive.partition(ctx, 2)[0].cap_policy == \
            exhaustive.cap_policy

    def test_enumerate_window_jumps_match_islice(self, faulter):
        ctx = faulter.engine().context("bitflip")
        space = ExhaustiveSpace()
        whole = list(space.enumerate(ctx))
        for start, stop in ((0, 7), (5, 40), (11, 11), (0, 10**6)):
            window = list(space.enumerate_window(ctx, start, stop))
            assert window == whole[start:stop]

    def test_subpartitioning_splits_the_window(self, faulter):
        ctx = faulter.engine().context("skip")
        space = ExhaustiveSpace()
        part = space.partition(ctx, 2)[1]
        subs = part.partition(ctx, 3)
        merged = [p for sub in subs for p in sub.enumerate(ctx)]
        assert merged == list(part.enumerate(ctx))


class TestStreamingEdgeCases:
    def test_explicit_space_accepts_unordered_lists(self, faulter):
        """A hand-built point list in arbitrary arrangement streams
        identically to the materialized path (the builder consumes
        rows in ascending enumeration order)."""
        from repro.faulter.space import ExplicitSpace

        ctx = faulter.engine().context("skip")
        points = list(ExhaustiveSpace().enumerate(ctx))
        shuffled = ExplicitSpace(points=tuple(reversed(points)))
        baseline = _materialized(faulter, "skip", shuffled)
        streamed = faulter.engine().run(
            "skip", shuffled,
            backend=SequentialBackend(max_resident_points=4))
        assert streamed == baseline
        assert streamed == _materialized(faulter, "skip",
                                         ExplicitSpace(tuple(points)))

    def test_multiprocess_partitions_capped_by_window(self, faulter):
        """Streaming multiprocess bounds every shard at the reorder
        window: more partitions than workers, identical report."""
        baseline = _materialized(faulter, "bitflip", ExhaustiveSpace())
        window = 40
        streamed = faulter.engine().run(
            "bitflip", ExhaustiveSpace(),
            backend=MultiprocessBackend(workers=2,
                                        max_resident_points=window))
        assert streamed == baseline
        assert streamed.total_faults > 2 * window  # several waves ran
        assert streamed.meta["peak_resident_points"] <= window

    def test_checkpoint_interval_not_widened_by_long_traces(self,
                                                            faulter):
        """The checkpoint grid is sized from the span a campaign
        actually covers, not the whole trace: a short-prefix window
        keeps its fine-grained replay (and its step savings)."""
        prefix = faulter.run_campaign("skip", trace_window=range(6),
                                      checkpoint_interval=1)
        full = faulter.run_campaign("skip", checkpoint_interval=1)
        assert prefix.meta["emulated_steps"] < \
            full.meta["emulated_steps"]
        assert prefix == faulter.run_campaign("skip",
                                              trace_window=range(6))


class TestStreamingKnobs:
    def test_stream_conflicts_with_instance(self):
        with pytest.raises(ValueError):
            resolve_backend(SequentialBackend(), stream=False)
        with pytest.raises(ValueError):
            resolve_backend(SequentialBackend(), max_resident_points=9)
        backend = SequentialBackend(max_resident_points=9)
        assert resolve_backend(backend, max_resident_points=9) is backend

    def test_window_requires_streaming(self):
        with pytest.raises(ValueError):
            SequentialBackend(stream=False, max_resident_points=4)
        with pytest.raises(ValueError):
            SequentialBackend(max_resident_points=0)

    def test_resolve_builds_streaming_backends(self):
        backend = resolve_backend(None, stream=False)
        assert backend.stream is False
        backend = resolve_backend("multiprocess", workers=2,
                                  max_resident_points=7)
        assert isinstance(backend, MultiprocessBackend)
        assert backend.max_resident_points == 7

    def test_cli_exposes_stream_knobs(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["fault", "t.elf", "--good", "00", "--bad", "01",
             "--marker", "OK", "--no-stream",
             "--max-resident-points", "128"])
        assert args.stream is False
        assert args.max_resident_points == 128

    def test_meta_records_streaming(self, faulter):
        report = faulter.run_campaign("skip", max_resident_points=4)
        assert report.meta["stream"] is True
        assert report.meta["max_resident_points"] == 4
        assert 0 < report.meta["peak_resident_points"] <= 4
        materialized = faulter.run_campaign("skip", stream=False)
        assert materialized.meta["stream"] is False
        # the materialized window holds the *executed* survivor points
        # (equivalence reduction elides the provably-dead remainder)
        assert materialized.meta["peak_resident_points"] == \
            materialized.meta["reduction"]["executed_points"]
        assert materialized.total_faults == \
            materialized.meta["reduction"]["full_points"]
