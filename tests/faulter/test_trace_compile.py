"""Campaign bit-identity with the trace-compiled tier on vs off.

The compiled tier is a pure performance substrate: every campaign
report — outcomes, per-point classifications, emulated step counts —
must be bit-identical to the precise interpreter across every fault
model, backend, streaming mode and workload.  ``trace_compile=False``
is the differential baseline these tests compare against.
"""

import pytest

from repro.faulter import (
    MultiprocessBackend,
    SampledSpace,
    SequentialBackend,
)
from repro.faulter.engine import EngineConfig, resolve_backend
from repro.faulter.models import MODELS
from repro.workloads import bootloader, corpus, pincheck

WORKLOADS = {
    "pincheck": pincheck.workload,
    "bootloader": lambda: bootloader.workload(rich=True),
    "exitgate": corpus.exitgate_workload,
}


@pytest.fixture(scope="module")
def faulters():
    return {name: factory().target().faulter()
            for name, factory in WORKLOADS.items()}


def _run(faulter, model, backend):
    space = SampledSpace(samples=24, seed=11)
    return faulter.engine().run(model, space, backend=backend)


def _assert_identical(faulter, model, on, off):
    compiled = _run(faulter, model, on)
    precise = _run(faulter, model, off)
    assert compiled == precise  # outcomes, faults, classifications
    assert (compiled.meta["emulated_steps"]
            == precise.meta["emulated_steps"])
    assert compiled.meta["trace_compile"] is True
    assert precise.meta["trace_compile"] is False
    assert precise.meta["compiled_steps"] == 0
    assert (compiled.meta["compiled_steps"]
            + compiled.meta["precise_steps"]
            == compiled.meta["emulated_steps"])


class TestEveryModelBitIdentical:
    """All registered fault models, checkpointed sequential backend."""

    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_model(self, faulters, model):
        _assert_identical(
            faulters["bootloader"], model,
            SequentialBackend(checkpoint_interval=64),
            SequentialBackend(checkpoint_interval=64,
                              trace_compile=False))


class TestBackendsAndStreaming:
    """skip model across backends x stream x workloads."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("stream", (True, False))
    def test_sequential_master_walk(self, faulters, workload, stream):
        _assert_identical(
            faulters[workload], "skip",
            SequentialBackend(stream=stream),
            SequentialBackend(stream=stream, trace_compile=False))

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_sequential_checkpointed(self, faulters, workload):
        _assert_identical(
            faulters[workload], "skip",
            SequentialBackend(checkpoint_interval=16),
            SequentialBackend(checkpoint_interval=16,
                              trace_compile=False))

    @pytest.mark.parametrize("stream", (True, False))
    def test_multiprocess(self, faulters, stream):
        _assert_identical(
            faulters["bootloader"], "skip",
            MultiprocessBackend(workers=2, checkpoint_interval=64,
                                stream=stream),
            MultiprocessBackend(workers=2, checkpoint_interval=64,
                                stream=stream, trace_compile=False))

    def test_multiprocess_aggregates_worker_counters(self, faulters):
        report = _run(
            faulters["bootloader"], "skip",
            MultiprocessBackend(workers=2, checkpoint_interval=64))
        assert report.meta["compiled_steps"] > 0
        assert report.meta["compile_seconds"] >= 0.0


class TestKnobPlumbing:
    def test_engine_config_roundtrip(self):
        config = EngineConfig(trace_compile=False)
        assert (EngineConfig.from_dict(config.to_dict()).trace_compile
                is False)
        assert EngineConfig().to_dict()["trace_compile"] is None

    def test_engine_config_validates(self):
        with pytest.raises(ValueError, match="trace_compile"):
            EngineConfig(trace_compile="yes")

    def test_resolve_backend_plumbs_the_knob(self):
        backend = resolve_backend(None, trace_compile=False)
        assert backend.trace_compile is False
        backend = resolve_backend("multiprocess", trace_compile=False)
        assert backend.trace_compile is False
        assert resolve_backend(None).trace_compile is True

    def test_resolve_backend_instance_conflict(self):
        instance = SequentialBackend()
        with pytest.raises(ValueError, match="trace_compile"):
            resolve_backend(instance, trace_compile=False)

    def test_default_is_on(self):
        assert SequentialBackend().trace_compile is True
        assert MultiprocessBackend().trace_compile is True
