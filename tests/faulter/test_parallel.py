"""Parallel campaign driver: results must match the sequential run."""

import pytest

from repro.faulter import Faulter
from repro.faulter.parallel import _split, merge_reports, \
    run_parallel_campaign
from repro.workloads import pincheck


@pytest.fixture(scope="module")
def wl():
    return pincheck.workload()


class TestSplit:
    def test_windows_cover_everything(self):
        for total in (1, 7, 100, 101):
            for parts in (1, 2, 3, 8):
                windows = _split(total, parts)
                seen = [i for w in windows for i in w]
                assert seen == list(range(total))

    def test_windows_disjoint(self):
        windows = _split(50, 4)
        flattened = [i for w in windows for i in w]
        assert len(flattened) == len(set(flattened))


class TestParallelEqualsSequential:
    @pytest.mark.parametrize("model", ["skip", "bitflip"])
    def test_same_results(self, wl, model):
        exe = wl.build()
        sequential = Faulter(exe, wl.good_input, wl.bad_input,
                             wl.grant_marker,
                             name=wl.name).run_campaign(model)
        parallel = run_parallel_campaign(
            exe, wl.good_input, wl.bad_input, wl.grant_marker,
            model=model, name=wl.name, workers=3)
        assert parallel.total_faults == sequential.total_faults
        assert parallel.outcomes == sequential.outcomes
        assert [(f.trace_index, f.address, f.detail)
                for f in parallel.successes] == \
            sorted([(f.trace_index, f.address, f.detail)
                    for f in sequential.successes])

    def test_accepts_elf_bytes(self, wl):
        from repro.binfmt.writer import write_elf
        report = run_parallel_campaign(
            write_elf(wl.build()), wl.good_input, wl.bad_input,
            wl.grant_marker, model="skip", workers=2)
        assert report.vulnerable

    def test_single_worker_falls_back(self, wl):
        report = run_parallel_campaign(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            model="skip", workers=1)
        assert report.total_faults == report.trace_length


class TestMerge:
    def test_merge_sums_counters(self, wl):
        exe = wl.build()
        faulter = Faulter(exe, wl.good_input, wl.bad_input,
                          wl.grant_marker, name=wl.name)
        first = faulter.run_campaign("skip", trace_window=range(0, 10))
        second = faulter.run_campaign("skip",
                                      trace_window=range(10, 23))
        merged = merge_reports([first, second], name=wl.name,
                               model="skip", trace_length=23)
        full = faulter.run_campaign("skip")
        assert merged.total_faults == full.total_faults
        assert merged.outcomes == full.outcomes
