"""Artifact store: content addressing, corruption robustness, and the
cache-on/off x cold/warm bit-identity matrix."""

import os
import pickle

import pytest

from repro.faulter import EngineConfig, Faulter
from repro.faulter.artifacts import (
    _MAGIC,
    ArtifactStats,
    ArtifactStore,
    checkpoints_key,
    default_cache_dir,
    digest_key,
    flags_key,
    image_digest,
    jit_key,
    trace_key,
)
from repro.faulter.engine import MultiprocessBackend, shutdown_fleet
from repro.workloads import pincheck


@pytest.fixture(scope="module")
def wl():
    return pincheck.workload()


@pytest.fixture(scope="module")
def exe(wl):
    return wl.build()


def make_faulter(wl, exe, store=None):
    return Faulter(exe, wl.good_input, wl.bad_input, wl.grant_marker,
                   name=wl.name, artifacts=store)


class TestKeys:
    def test_digest_key_is_stable(self):
        assert digest_key(b"a", 1, None) == digest_key(b"a", 1, None)

    def test_parts_do_not_alias(self):
        # length prefixes keep b"ab"+b"c" distinct from b"a"+b"bc"
        assert digest_key(b"ab", b"c") != digest_key(b"a", b"bc")

    def test_every_input_lands_in_the_key(self):
        base = trace_key("img", b"bad", 100)
        assert trace_key("other", b"bad", 100) != base
        assert trace_key("img", b"worse", 100) != base
        assert trace_key("img", b"bad", 99) != base

    def test_kinds_never_collide(self):
        keys = {trace_key("img", b"x", 1), flags_key("img", b"x", 1),
                checkpoints_key("img", b"x", 1, 1), jit_key("img")}
        assert len(keys) == 4

    def test_image_digest_tracks_bytes(self):
        assert image_digest(b"elf") == image_digest(b"elf")
        assert image_digest(b"elf") != image_digest(b"elf2")

    def test_default_cache_dir_honors_xdg(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "r2r" / "artifacts"
        monkeypatch.delenv("XDG_CACHE_HOME")
        assert str(default_cache_dir()).endswith(
            os.path.join(".cache", "r2r", "artifacts"))


class TestStore:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.save("trace", "k" * 64, [1, 2, 3])
        # fresh store: no in-memory memo, must hit the disk
        fresh = ArtifactStore(tmp_path)
        assert fresh.load("trace", "k" * 64) == [1, 2, 3]
        assert fresh.stats.hits == 1

    def test_missing_file_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load("trace", "nope") is None
        assert store.stats.misses == 1

    def _payload_path(self, store, kind="trace", key="k" * 64):
        store.save(kind, key, [1, 2, 3])
        return store.root / kind / f"{key}.art"

    @pytest.mark.parametrize("mutate", [
        lambda raw: raw[:5],                       # truncated header
        lambda raw: raw[:-3],                      # truncated body
        lambda raw: b"junk" + raw[4:],             # clobbered magic
        lambda raw: raw[:50] + bytes([raw[50] ^ 0xFF]) + raw[51:],
        lambda raw: b"",                           # empty file
        lambda raw: _MAGIC + b"short",             # header only
    ])
    def test_corruption_is_a_silent_miss(self, tmp_path, mutate):
        store = ArtifactStore(tmp_path)
        path = self._payload_path(store)
        path.write_bytes(mutate(path.read_bytes()))
        fresh = ArtifactStore(tmp_path)
        assert fresh.load("trace", "k" * 64) is None
        assert fresh.stats.misses == 1

    def test_unpicklable_body_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = self._payload_path(store)
        body = b"\x80\x05not a pickle"
        import hashlib
        path.write_bytes(_MAGIC + hashlib.sha256(body).digest() + body)
        assert ArtifactStore(tmp_path).load("trace", "k" * 64) is None

    def test_validate_rejection_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("trace", "k" * 64, {"wrong": "type"})
        fresh = ArtifactStore(tmp_path)
        got = fresh.load("trace", "k" * 64,
                         validate=lambda p: isinstance(p, list))
        assert got is None
        assert fresh.stats.misses == 1

    def test_load_or_derive_times_the_builder(self, tmp_path):
        store = ArtifactStore(tmp_path)
        built = store.load_or_derive("trace", "k" * 64, lambda: [7])
        assert built == [7]
        assert store.stats.misses == 1 and store.stats.saves == 1
        again = store.load_or_derive("trace", "k" * 64,
                                     lambda: pytest.fail("rederived"))
        assert again == [7]
        assert store.stats.hits == 1

    def test_unpicklable_payload_save_fails_quietly(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.save("trace", "k" * 64, lambda: None) is False

    def test_info_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("trace", "a" * 64, [1])
        store.save("jit", "b" * 64, {"blocks": []})
        census = store.info()
        assert census["entries"] == 2
        assert set(census["kinds"]) == {"trace", "jit"}
        assert store.clear() == 2
        assert ArtifactStore(tmp_path).info()["entries"] == 0
        # clearing again is a no-op, not an error
        assert store.clear() == 0

    def test_stats_delta_and_merge(self):
        stats = ArtifactStats(hits=2, misses=1, saves=1,
                              derive_seconds=0.5)
        before = stats.snapshot()
        stats.hits += 3
        stats.derive_seconds += 0.25
        delta = stats.delta(before)
        assert delta["hits"] == 3 and delta["misses"] == 0
        assert delta["derive_seconds"] == pytest.approx(0.25)
        other = ArtifactStats()
        other.merge(delta)
        assert other.hits == 3


class TestConfigKnobs:
    def test_off_by_default(self):
        assert EngineConfig().artifact_store() is None

    def test_enabled_at_default_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        store = EngineConfig(artifact_cache=True).artifact_store()
        assert store is not None
        assert store.root == tmp_path / "r2r" / "artifacts"

    def test_cache_dir_implies_enabled(self, tmp_path):
        store = EngineConfig(cache_dir=str(tmp_path)).artifact_store()
        assert store is not None and store.root == tmp_path

    def test_explicit_off_wins(self):
        assert EngineConfig(
            artifact_cache=False).artifact_store() is None

    def test_off_conflicts_with_cache_dir(self, tmp_path):
        with pytest.raises(ValueError):
            EngineConfig(artifact_cache=False, cache_dir=str(tmp_path))

    def test_steal_requires_multiprocess(self):
        with pytest.raises(ValueError):
            EngineConfig(backend="sequential", steal=False)
        config = EngineConfig(backend="multiprocess", steal=False)
        assert config.resolve().steal is False

    def test_dict_roundtrip(self, tmp_path):
        config = EngineConfig(artifact_cache=True,
                              cache_dir=str(tmp_path), steal=False,
                              backend="multiprocess")
        again = EngineConfig.from_dict(config.to_dict())
        assert again == config


MATRIX_MODELS = ("skip", "bitflip", "reg-bitflip")


class TestBitIdentityMatrix:
    """cache on/off x cold/warm x sequential/multiprocess x 3 models."""

    @pytest.fixture(scope="class")
    def baselines(self, wl, exe):
        faulter = make_faulter(wl, exe)
        return {model: faulter.run_campaign(model)
                for model in MATRIX_MODELS}

    @pytest.mark.parametrize("model", MATRIX_MODELS)
    def test_cold_then_warm_sequential(self, wl, exe, tmp_path,
                                       baselines, model):
        root = tmp_path / "seq"
        cold = make_faulter(wl, exe, ArtifactStore(root)) \
            .run_campaign(model, checkpoint_interval=16)
        assert cold == baselines[model]
        warm_store = ArtifactStore(root)
        warm = make_faulter(wl, exe, warm_store) \
            .run_campaign(model, checkpoint_interval=16)
        assert warm == baselines[model]
        meta = warm.meta["artifacts"]
        assert meta["enabled"] and meta["hits"] > 0
        assert meta["misses"] == 0 and meta["saves"] == 0

    @pytest.mark.parametrize("model", MATRIX_MODELS)
    def test_cold_then_warm_multiprocess(self, wl, exe, tmp_path,
                                         baselines, model):
        root = tmp_path / "mp"
        backend = MultiprocessBackend(workers=2,
                                      checkpoint_interval=16)
        cold = make_faulter(wl, exe, ArtifactStore(root)) \
            .run_campaign(model, backend=backend)
        assert cold == baselines[model]
        warm = make_faulter(wl, exe, ArtifactStore(root)) \
            .run_campaign(model, backend=backend)
        assert warm == baselines[model]
        assert warm.meta["artifacts"]["enabled"]

    def test_report_equality_ignores_artifact_meta(self, wl, exe,
                                                   tmp_path,
                                                   baselines):
        cached = make_faulter(
            wl, exe, ArtifactStore(tmp_path / "meta")) \
            .run_campaign("skip")
        assert cached == baselines["skip"]
        assert cached.meta["artifacts"] != \
            baselines["skip"].meta["artifacts"]


class TestEndToEndRobustness:
    def test_corrupt_every_artifact_then_rerun(self, wl, exe,
                                               tmp_path):
        """Flipping bytes in every stored artifact must silently fall
        back to re-derivation with an identical report."""
        store = ArtifactStore(tmp_path)
        baseline = make_faulter(wl, exe).run_campaign(
            "skip", checkpoint_interval=16)
        cold = make_faulter(wl, exe, store).run_campaign(
            "skip", checkpoint_interval=16)
        assert cold == baseline
        corrupted = 0
        for kind_dir in store.root.iterdir():
            for path in kind_dir.iterdir():
                raw = bytearray(path.read_bytes())
                raw[len(raw) // 2] ^= 0xFF
                path.write_bytes(bytes(raw))
                corrupted += 1
        assert corrupted > 0
        rerun_store = ArtifactStore(tmp_path)
        rerun = make_faulter(wl, exe, rerun_store).run_campaign(
            "skip", checkpoint_interval=16)
        assert rerun == baseline
        meta = rerun.meta["artifacts"]
        assert meta["misses"] > 0 and meta["saves"] > 0

    def test_stale_digest_falls_back(self, wl, exe, tmp_path):
        """An artifact whose body pickles fine but was recorded for
        different content (stale digest file swapped in) must be
        rejected by the body hash, not trusted."""
        store = ArtifactStore(tmp_path)
        faulter = make_faulter(wl, exe, store)
        baseline = make_faulter(wl, exe).run_campaign("skip")
        cold = faulter.run_campaign("skip")
        assert cold == baseline
        trace_dir = store.root / "trace"
        [path] = list(trace_dir.iterdir())
        # a valid-looking payload under the *wrong* outer digest: the
        # body hash no longer matches the stored header
        body = pickle.dumps([0xBAD])
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) - len(body)] + body
                         if len(raw) > len(body) else raw[:8] + body)
        rerun = make_faulter(wl, exe, ArtifactStore(tmp_path)) \
            .run_campaign("skip")
        assert rerun == baseline

    def test_wrong_payload_type_is_revalidated(self, wl, exe,
                                               tmp_path):
        """A well-formed artifact holding the wrong shape (e.g. a dict
        where the trace list belongs) fails validation and re-derives."""
        store = ArtifactStore(tmp_path)
        cold_faulter = make_faulter(wl, exe, store)
        baseline = make_faulter(wl, exe).run_campaign("skip")
        assert cold_faulter.run_campaign("skip") == baseline
        trace_dir = store.root / "trace"
        [path] = list(trace_dir.iterdir())
        key = path.stem
        # overwrite through the store so magic/digest are valid
        poisoned = ArtifactStore(tmp_path)
        poisoned.save("trace", key, {"not": "a trace"})
        rerun = make_faulter(wl, exe, ArtifactStore(tmp_path)) \
            .run_campaign("skip")
        assert rerun == baseline

    def test_reduction_proofs_are_cached_and_reloaded(self, wl, exe,
                                                      tmp_path):
        """A campaign persists its prune/class verdicts under the
        ``facts`` kind; a later cold process loads them instead of
        re-running the traceflow analysis — identically."""
        store = ArtifactStore(tmp_path)
        baseline = make_faulter(wl, exe).run_campaign("skip")
        assert make_faulter(wl, exe, store) \
            .run_campaign("skip") == baseline
        facts_dir = store.root / "facts"
        assert any(facts_dir.iterdir())
        warm_store = ArtifactStore(tmp_path)
        before = warm_store.stats.snapshot()
        assert make_faulter(wl, exe, warm_store) \
            .run_campaign("skip") == baseline
        delta = warm_store.stats.delta(before)
        assert delta["hits"] > 0 and delta["misses"] == 0

    def test_chunked_campaign_reports_artifact_counters(self, tmp_path):
        """``run_chunked`` merges artifact counters into its meta (a
        regression guard: an inner loop variable used to shadow the
        stats snapshot)."""
        import pathlib

        from repro.binfmt.reader import read_elf

        fixture = pathlib.Path(__file__).resolve().parents[2] / \
            "tests" / "fixtures" / "bootloader_pie.elf"
        exe = read_elf(fixture.read_bytes())
        good = bytes.fromhex("0d141b222930373e")
        bad = bytes.fromhex("0d141b223930373f")
        plain = Faulter(exe, good, bad, b"BOOT OK",
                        name="pie").run_chunked_campaign("skip")
        cached = Faulter(exe, good, bad, b"BOOT OK", name="pie",
                         artifacts=ArtifactStore(tmp_path)) \
            .run_chunked_campaign("skip")
        assert cached == plain
        meta = cached.meta["artifacts"]
        assert meta["enabled"] is True
        assert meta["misses"] > 0 and meta["saves"] > 0

    def test_evaluate_with_cache_matches_without(self, wl, exe,
                                                 tmp_path):
        from repro.api import Target
        plain = Target(exe, wl.good_input, wl.bad_input,
                       wl.grant_marker, name=wl.name) \
            .evaluate(models=("skip",))
        cached = Target(exe, wl.good_input, wl.bad_input,
                        wl.grant_marker, name=wl.name) \
            .evaluate(models=("skip",),
                      config=EngineConfig(cache_dir=str(tmp_path)))
        assert cached.baseline_reports == plain.baseline_reports
        assert cached.hardened_reports == plain.hardened_reports
        assert cached.diff.counts() == plain.diff.counts()


def teardown_module(module):
    shutdown_fleet()
