"""Extension features: multi-fault campaigns, guided hybrid filter."""

import pytest

from repro.emu import Machine
from repro.faulter import Faulter
from repro.hybrid import faulter_guided_filter, hybrid_harden
from repro.workloads import pincheck


@pytest.fixture(scope="module")
def wl():
    return pincheck.workload()


class TestFaultPlan:
    def test_two_skips_in_one_run(self, wl):
        """Skipping both duplicated compares of a Table II pattern in
        the same run defeats the single-fault countermeasure — the
        double-fault machinery must express that."""
        exe = wl.build()
        machine = Machine(exe, stdin=wl.bad_input)
        skip = lambda insn, cpu: None
        result = machine.run(fault_plan={3: skip, 8: skip})
        assert result.reason in ("exit", "crash", "max-steps")

    def test_plan_and_single_fault_combined(self, wl):
        machine = Machine(wl.build(), stdin=wl.bad_input)
        skip = lambda insn, cpu: None
        result = machine.run(fault_step=2, fault_intercept=skip,
                             fault_plan={5: skip})
        assert result.steps > 0


class TestPairCampaign:
    def test_pair_campaign_runs(self, wl):
        faulter = Faulter(wl.build(), wl.good_input, wl.bad_input,
                          wl.grant_marker, name=wl.name)
        report = faulter.run_pair_campaign("skip", samples=100, seed=1)
        assert report.total_faults > 50
        assert sum(report.outcomes.values()) == report.total_faults

    def test_pair_campaign_deterministic(self, wl):
        faulter = Faulter(wl.build(), wl.good_input, wl.bad_input,
                          wl.grant_marker, name=wl.name)
        first = faulter.run_pair_campaign("skip", samples=60, seed=7)
        second = faulter.run_pair_campaign("skip", samples=60, seed=7)
        assert first.outcomes == second.outcomes

    def test_hardened_binary_still_attackable_with_two_faults(self, wl):
        """Single-fault protection does not (and cannot) guarantee
        double-fault resistance — the paper's threat model is single
        fault per run."""
        from repro.patcher import FaulterPatcherLoop
        result = FaulterPatcherLoop(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            models=("skip",), name=wl.name).run()
        assert result.converged  # single-fault clean
        faulter = Faulter(result.hardened, wl.good_input, wl.bad_input,
                          wl.grant_marker, name="hardened")
        report = faulter.run_pair_campaign("skip", samples=400, seed=3)
        # informational: pairs may or may not break it, but the
        # campaign must classify every sampled pair
        assert sum(report.outcomes.values()) == report.total_faults


class TestGuidedHybrid:
    def test_guided_filter_reduces_overhead(self, wl):
        exe = wl.build()
        guided = faulter_guided_filter(exe, wl.good_input,
                                       wl.bad_input, wl.grant_marker)
        selective = hybrid_harden(exe, wl.good_input, wl.bad_input,
                                  wl.grant_marker, name=wl.name,
                                  branch_filter=guided)
        full = hybrid_harden(exe, wl.good_input, wl.bad_input,
                             wl.grant_marker, name=wl.name)
        assert selective.hardening.branches_hardened <= \
            full.hardening.branches_hardened
        assert selective.overhead_percent < full.overhead_percent

    def test_guided_still_fixes_skip_vulnerabilities(self, wl):
        exe = wl.build()
        guided = faulter_guided_filter(exe, wl.good_input,
                                       wl.bad_input, wl.grant_marker)
        result = hybrid_harden(exe, wl.good_input, wl.bad_input,
                               wl.grant_marker, name=wl.name,
                               branch_filter=guided, models=("skip",))
        report = result.final_reports["skip"]
        # the originally vulnerable branch is protected; any residual
        # successes would sit on unprotected branches
        assert report.outcomes.get("success", 0) == 0
