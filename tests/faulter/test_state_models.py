"""State-family fault models: variants, effects, and the
backend/streaming bit-identity matrix.

The tentpole property: the :class:`~repro.emu.effects.FaultEffect`
protocol generalizes injection beyond fetch substitution without
changing a single engine guarantee — for every state model, streamed
execution equals the materialized path, both backends agree, and every
checkpoint interval (1/64/inf) replays bit-identically, on both
bundled campaign workloads.
"""

import math

import pytest

from repro.emu import Machine
from repro.emu.effects import (
    BranchInvertEffect,
    FlagForceEffect,
    MemoryBitFlipEffect,
    RegisterBitFlipEffect,
)
from repro.faulter import (
    ENCODING_MODELS,
    Faulter,
    MODELS,
    MultiprocessBackend,
    STATE_MODELS,
    SequentialBackend,
    model_by_name,
)
from repro.faulter.space import ExhaustiveSpace, SampledSpace
from repro.isa.metadata import effects as isa_effects
from repro.isa.registers import reg
from repro.workloads import bootloader, pincheck

# Bounded space per model: exhaustive where the population is tiny,
# seeded samples where it is not (reg-bitflip enumerates 64 bits per
# live register per step).
SPACE_FOR = {
    "reg-bitflip": lambda: SampledSpace(samples=60, seed=13),
    "mem-bitflip": lambda: SampledSpace(samples=60, seed=13),
    "flag-stuck": lambda: ExhaustiveSpace(),
    "branch-invert": lambda: ExhaustiveSpace(),
}

INTERVALS = (1, 64, math.inf)


@pytest.fixture(scope="module")
def wl():
    return pincheck.workload()


@pytest.fixture(scope="module")
def faulter(wl):
    return Faulter(wl.build(), wl.good_input, wl.bad_input,
                   wl.grant_marker, name=wl.name)


@pytest.fixture(scope="module")
def boot_faulter():
    wl = bootloader.workload(size=8)
    return Faulter(wl.build(), wl.good_input, wl.bad_input,
                   wl.grant_marker, name=wl.name)


def _materialized(faulter, model, space):
    return faulter.engine().run(
        model, space, backend=SequentialBackend(stream=False))


class TestRegistry:
    def test_families_partition_the_registry(self):
        assert set(ENCODING_MODELS) | set(STATE_MODELS) == set(MODELS)
        assert not set(ENCODING_MODELS) & set(STATE_MODELS)
        assert set(STATE_MODELS) == {"reg-bitflip", "flag-stuck",
                                     "mem-bitflip", "branch-invert"}

    def test_models_report_family_and_stage(self):
        for name in ENCODING_MODELS:
            model = model_by_name(name)
            assert (model.family, model.stage) == ("encoding", "fetch")
        for name in STATE_MODELS:
            model = model_by_name(name)
            assert (model.family, model.stage) == ("state", "state")

    def test_unknown_model_still_rejected(self):
        with pytest.raises(KeyError, match="reg-bitflip"):
            model_by_name("reg-flip")


class TestVariants:
    """Variant enumeration against the traced instruction's ISA
    metadata."""

    def _insn_at(self, faulter, step):
        machine = Machine(faulter.image, stdin=faulter.bad_input)
        return machine.fetch_decode(faulter.trace()[step])

    def test_reg_bitflip_targets_only_live_registers(self, faulter):
        model = model_by_name("reg-bitflip")
        for step in range(len(faulter.trace()) - 1):
            insn = self._insn_at(faulter, step)
            meta = isa_effects(insn)
            live = {r.code for r in (meta.reads | meta.writes)}
            variants = model.variants(insn, meta)
            assert {code for code, _ in variants} == live
            assert len(variants) == 64 * len(live)
            # passing no metadata derives it identically
            assert list(model.variants(insn)) == list(variants)

    def test_flag_stuck_only_at_flag_consumers(self, faulter):
        model = model_by_name("flag-stuck")
        seen_consumer = False
        for step in range(len(faulter.trace()) - 1):
            insn = self._insn_at(faulter, step)
            variants = model.variants(insn)
            if insn.reads_flags:
                seen_consumer = True
                assert sorted(variants) == sorted(
                    (flag, value)
                    for flag in ("zf", "cf", "sf") for value in (0, 1))
            else:
                assert variants == []
        assert seen_consumer

    def test_mem_bitflip_sized_by_read_operand_width(self, faulter):
        from repro.isa.insn import Mnemonic
        from repro.isa.operands import Mem

        model = model_by_name("mem-bitflip")
        write_only = (Mnemonic.MOV, Mnemonic.MOVZX, Mnemonic.SETCC,
                      Mnemonic.POP)
        for step in range(len(faulter.trace()) - 1):
            insn = self._insn_at(faulter, step)
            if insn.mnemonic is Mnemonic.LEA:
                expected = 0  # address computation, cell never touched
            else:
                expected = sum(
                    op.size * 8
                    for position, op in enumerate(insn.operands)
                    if isinstance(op, Mem)
                    and not (position == 0
                             and insn.mnemonic in write_only))
            assert len(model.variants(insn)) == expected

    def test_mem_bitflip_skips_write_only_destinations(self):
        """A flipped cell a store immediately overwrites is a
        guaranteed no-op; such points must not be enumerated."""
        from repro.isa.decoder import decode

        model = model_by_name("mem-bitflip")
        # mov byte ptr [rax], bl : 88 18 — write-only destination
        store = decode(bytes.fromhex("8818"), 0, 0x1000)
        assert model.variants(store) == []
        # mov bl, byte ptr [rax] : 8a 18 — read source, 8 bits
        load = decode(bytes.fromhex("8a18"), 0, 0x1000)
        assert len(model.variants(load)) == 8

    def test_branch_invert_only_at_conditionals(self, faulter):
        model = model_by_name("branch-invert")
        flavors = set()
        for step in range(len(faulter.trace()) - 1):
            insn = self._insn_at(faulter, step)
            variants = model.variants(insn)
            assert variants == ([()] if insn.is_conditional else [])
            flavors.add(insn.is_conditional)
        assert flavors == {True, False}


class TestEffectSemantics:
    """Machine-level behaviour of the state effects."""

    def test_register_bitflip_flips_one_bit(self, wl):
        machine = Machine(wl.build(), stdin=wl.bad_input)
        rax = reg("rax").code
        before = machine.cpu.regs[rax]
        RegisterBitFlipEffect(rax, 5).mutate(machine, None)
        assert machine.cpu.regs[rax] == before ^ (1 << 5)

    def test_flag_force_sets_and_clears(self, wl):
        machine = Machine(wl.build(), stdin=wl.bad_input)
        FlagForceEffect("zf", 1).mutate(machine, None)
        assert machine.cpu.flags.zf is True
        FlagForceEffect("zf", 0).mutate(machine, None)
        assert machine.cpu.flags.zf is False

    def test_branch_invert_grants_on_pincheck(self, faulter):
        """Untaking the pin-mismatch branch is the canonical
        fault-injection attack; the campaign must find it."""
        report = faulter.run_campaign("branch-invert")
        assert report.vulnerable
        assert all(f.mnemonic.startswith("j") for f in report.successes)

    def test_flag_stuck_grants_on_pincheck(self, faulter):
        report = faulter.run_campaign("flag-stuck")
        assert report.vulnerable

    def test_branch_invert_effect_takes_untaken_branch(self, wl):
        """At a step whose branch falls through, the effect must
        redirect the PC to the branch target (and vice versa)."""
        machine = Machine(wl.build(), stdin=wl.bad_input)
        trace_machine = Machine(wl.build(), stdin=wl.bad_input)
        baseline = trace_machine.run(record_trace=True)
        # find the first conditional along the trace
        probe = Machine(wl.build(), stdin=wl.bad_input)
        step = next(i for i, addr in enumerate(baseline.trace)
                    if probe.fetch_decode(addr).is_conditional)
        result = machine.run(
            fault_plan={step: BranchInvertEffect()}, record_trace=True)
        assert result.trace[:step + 1] == baseline.trace[:step + 1]
        assert result.trace[step + 1] != baseline.trace[step + 1]

    def test_mem_bitflip_rolls_back_with_the_journal(self, wl):
        """The permission-blind poke must be journaled: master-walk
        snapshot/rollback execution may not leak corruption into
        later fault points."""
        machine = Machine(wl.build(), stdin=wl.bad_input)
        probe = Machine(wl.build(), stdin=wl.bad_input)
        trace = probe.run(record_trace=True).trace
        from repro.isa.operands import Mem

        step = next(
            i for i, addr in enumerate(trace)
            if any(isinstance(op, Mem)
                   for op in probe.fetch_decode(addr).operands))
        state = machine.snapshot()
        machine.memory.journal_begin()
        faulted = machine.run(
            fault_plan={step: MemoryBitFlipEffect(0, 0)})
        machine.memory.journal_rollback()
        machine.restore(state)
        clean = machine.run()
        baseline = Machine(wl.build(), stdin=wl.bad_input).run()
        assert clean.behavior() == baseline.behavior()
        assert faulted.steps > 0


class TestStateModelBitIdentity:
    """The acceptance matrix: every state model x both backends x
    streamed/materialized x checkpoint intervals, on both bundled
    campaign workloads."""

    @pytest.mark.parametrize("model", STATE_MODELS)
    def test_pincheck_matrix(self, faulter, model):
        self._matrix(faulter, model)

    @pytest.mark.parametrize("model", STATE_MODELS)
    def test_bootloader_matrix(self, boot_faulter, model):
        self._matrix(boot_faulter, model)

    @staticmethod
    def _matrix(faulter, model):
        space = SPACE_FOR[model]()
        baseline = _materialized(faulter, model, space)
        assert baseline.total_faults > 0
        engine = faulter.engine()
        streamed = engine.run(
            model, space,
            backend=SequentialBackend(max_resident_points=16))
        assert streamed == baseline
        assert streamed.meta["peak_resident_points"] <= 16
        parallel = engine.run(
            model, space, backend=MultiprocessBackend(workers=3))
        assert parallel == baseline
        for interval in INTERVALS:
            replayed = engine.run(
                model, space,
                backend=SequentialBackend(checkpoint_interval=interval))
            assert replayed == baseline, f"interval={interval}"

    def test_exhaustive_run_campaign_equals_engine(self, faulter):
        """The campaign driver's exhaustive path rides the same
        protocol."""
        for model in ("flag-stuck", "branch-invert"):
            driver = faulter.run_campaign(model)
            engine = faulter.engine().run(
                model, ExhaustiveSpace(),
                backend=SequentialBackend(stream=False))
            assert driver == engine


class TestReportsAndCLI:
    def test_state_fault_details_serialize_losslessly(self, faulter):
        from repro.faulter import CampaignReport

        report = faulter.run_campaign("reg-bitflip",
                                      collect_outcomes=True)
        rebuilt = CampaignReport.from_dict(report.to_dict())
        assert rebuilt == report
        assert rebuilt.all_outcomes == report.all_outcomes

    def test_cli_choices_derive_from_registry(self):
        from repro.cli import MODEL_CHOICES, build_parser

        assert MODEL_CHOICES == sorted(MODELS)
        parser = build_parser()
        args = parser.parse_args(
            ["fault", "t.elf", "--good", "00", "--bad", "01",
             "--marker", "OK", "--model", "reg-bitflip",
             "--model", "branch-invert"])
        assert args.model == ["reg-bitflip", "branch-invert"]

    def test_describe_names_the_substrate(self):
        assert model_by_name("reg-bitflip").describe((0, 3)) == \
            "reg-bitflip(rax, bit=3)"
        assert model_by_name("flag-stuck").describe(("zf", 1)) == \
            "flag-stuck(zf=1)"
        assert model_by_name("mem-bitflip").describe((0, 7)) == \
            "mem-bitflip(operand=0, bit=7)"
        assert model_by_name("branch-invert").describe(()) == \
            "branch-invert"

    def test_differential_rollups_cover_state_models(self, wl):
        """evaluate_countermeasures campaigns under a state model while
        hardening with the encoding-family loop; the rollup must key
        the state model."""
        from repro.api import evaluate_countermeasures

        evaluation = evaluate_countermeasures(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            models=("branch-invert",),
            harden_models=("branch-invert",))
        assert evaluation.diff.models == ["branch-invert"]
        census = evaluation.diff.counts(model="branch-invert")
        assert sum(census.values()) >= 1
        assert "branch-invert" in evaluation.diff.by_model()
        # the Fig. 2 loop iterated on the encoding fallback, not the
        # state model
        assert set(evaluation.result.final_reports) == {"skip"}
