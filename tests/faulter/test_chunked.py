"""Per-unit chunked campaigns: bit-identity plus rollups.

``CampaignEngine.run_chunked`` partitions the bad-input trace along a
:class:`~repro.disasm.units.RewritePlan` and runs one sub-campaign per
unit inside the backend's ``max_resident_points`` bound.  The report
must be *bit-identical* to an unchunked exhaustive run (equality
excludes ``meta``) — chunking is an execution strategy, never a
result change — while ``meta["units"]`` gains per-function rollups.
"""

import pytest

from repro.api import EngineConfig
from repro.faulter.campaign import Faulter
from repro.faulter.engine import resolve_backend
from repro.faulter.space import ExhaustiveSpace
from repro.workloads import bootloader, pincheck


def faulter_and_plan(wl, name):
    exe = wl.build()
    oracle = wl.oracle if wl.oracle is not None else wl.grant_marker
    faulter = Faulter(exe, wl.good_input, wl.bad_input, oracle,
                      name=name)
    return faulter, faulter.rewrite_plan()


class TestBitIdentity:
    @pytest.mark.parametrize("model", ["skip", "bitflip"])
    def test_single_function_workload(self, model):
        faulter, plan = faulter_and_plan(pincheck.workload(), "pin")
        engine = faulter.engine()
        base = engine.run(model, ExhaustiveSpace(), reduce=False)
        assert engine.run_chunked(model, plan) == base

    @pytest.mark.parametrize("model", ["skip", "bitflip"])
    def test_multi_function_workload(self, model):
        faulter, plan = faulter_and_plan(
            pincheck.workload(rich=True), "pin-rich")
        assert len(plan.units) > 1
        engine = faulter.engine()
        base = engine.run(model, ExhaustiveSpace(), reduce=False)
        report = engine.run_chunked(model, plan)
        assert report == base
        assert set(report.meta["units"]) == \
            {u.name for u in plan.units
             if any(plan.unit_at(a) is u for a in set(faulter.trace()))}

    def test_identical_to_reduced_run(self):
        # the default (reduced) exhaustive run already reports every
        # point of the full space; chunked must agree with it too
        faulter, plan = faulter_and_plan(bootloader.workload(), "boot")
        engine = faulter.engine()
        assert engine.run_chunked("skip", plan) == \
            engine.run("skip", ExhaustiveSpace())

    def test_bounded_resident_window(self):
        faulter, plan = faulter_and_plan(
            pincheck.workload(rich=True), "pin-rich")
        engine = faulter.engine()
        base = engine.run("skip", ExhaustiveSpace(), reduce=False)
        backend = resolve_backend(None, max_resident_points=4)
        report = engine.run_chunked("skip", plan, backend=backend)
        assert report == base
        assert report.meta["peak_resident_points"] <= 4

    def test_multiprocess_backend(self):
        faulter, plan = faulter_and_plan(pincheck.workload(), "pin")
        engine = faulter.engine()
        base = engine.run("skip", ExhaustiveSpace(), reduce=False)
        backend = resolve_backend("multiprocess", workers=2)
        assert engine.run_chunked("skip", plan, backend=backend) == base


class TestRollups:
    def test_rollup_shape(self):
        faulter, plan = faulter_and_plan(
            bootloader.workload(rich=True), "boot-rich")
        report = faulter.run_chunked_campaign("skip")
        units = report.meta["units"]
        assert units
        for rollup in units.values():
            assert rollup["points"] == sum(rollup["outcomes"].values())
            assert rollup["trace_steps"] > 0
        total = sum(r["points"] for r in units.values())
        assert total == report.total_faults
        assert report.meta["space"].startswith("unit-chunked[")
        assert report.meta["reduction"] == {"enabled": False,
                                            "reason": "chunked"}

    def test_rollups_cover_whole_trace(self):
        faulter, plan = faulter_and_plan(
            pincheck.workload(rich=True), "pin-rich")
        report = faulter.run_chunked_campaign("skip")
        steps = sum(r["trace_steps"]
                    for r in report.meta["units"].values())
        assert steps == len(faulter.trace())


class TestConfigWiring:
    def test_engine_config_round_trips(self):
        config = EngineConfig(chunk_units=True)
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_chunk_units_rejects_multi_fault(self):
        with pytest.raises(ValueError, match="single-fault"):
            EngineConfig(chunk_units=True, k_faults=2)

    def test_target_campaign_dispatch(self):
        wl = pincheck.workload()
        plain = wl.target().campaign(("skip",))
        chunked = wl.target().campaign(
            ("skip",), EngineConfig(chunk_units=True))
        assert chunked["skip"] == plain["skip"]
        assert "units" in chunked["skip"].meta
