"""Provenance maps and differential countermeasure evaluation."""

import json

import pytest

from repro.api import evaluate_countermeasures
from repro.faulter.report import (
    CampaignReport,
    DiffPoint,
    DifferentialReport,
    ELIMINATED,
    Fault,
    INTRODUCED,
    SURVIVING,
    UNMAPPED,
    differential_report,
)
from repro.provenance import (
    KIND_BLOCK,
    KIND_DERIVED,
    KIND_INSN,
    ProvenanceEntry,
    ProvenanceMap,
)
from repro.workloads import bootloader, corpus, pincheck


class TestProvenanceMap:
    def test_point_entries(self):
        prov = ProvenanceMap(path="patcher")
        prov.add(0x1000, 0x2000)
        prov.add(0x1000, 0x2010, kind=KIND_DERIVED)
        assert prov.to_original(0x2000) == 0x1000
        assert prov.to_original(0x2010) == 0x1000
        assert prov.to_original(0x2001) is None
        assert prov.normalize_original(0x1000) == 0x1000
        assert prov.normalize_original(0x1001) is None
        assert prov.to_rewritten(0x1000) == [0x2000, 0x2010]

    def test_identity_regions(self):
        prov = ProvenanceMap(path="detour")
        prov.add_identity(0x1000, 0x1100)
        assert prov.to_original(0x1050) == 0x1050
        assert prov.to_original(0x1100) is None  # exclusive end
        assert prov.normalize_original(0x10FF) == 0x10FF

    def test_exact_entry_wins_over_identity(self):
        prov = ProvenanceMap(path="detour")
        prov.add_identity(0x1000, 0x1100)
        prov.add(0x1010, 0x1020)
        assert prov.to_original(0x1020) == 0x1010

    def test_block_ranges_resolve_to_block_head(self):
        prov = ProvenanceMap(path="lower")
        prov.add_range(0x1000, 0x1010, 0x8000, 0x8040)
        assert prov.to_original(0x8000) == 0x1000
        assert prov.to_original(0x803F) == 0x1000
        assert prov.to_original(0x8040) is None
        # every original address inside the block keys on the head
        assert prov.normalize_original(0x1000) == 0x1000
        assert prov.normalize_original(0x100F) == 0x1000
        assert prov.normalize_original(0x1010) is None

    def test_rejects_bad_input(self):
        prov = ProvenanceMap()
        with pytest.raises(ValueError):
            prov.add(0x1000, 0x2000, kind="bogus")
        with pytest.raises(ValueError):
            prov.add_range(0x1000, 0x1000, 0x2000, 0x2010)
        with pytest.raises(ValueError):
            prov.add_identity(5, 5)

    def test_counts(self):
        prov = ProvenanceMap()
        prov.add(1, 2)
        prov.add(1, 3, kind=KIND_DERIVED)
        prov.add_range(0x10, 0x20, 0x30, 0x40, kind=KIND_BLOCK)
        prov.add_identity(0, 1)
        assert prov.counts() == {
            KIND_INSN: 1, KIND_DERIVED: 1, KIND_BLOCK: 1,
            "identity_regions": 1}

    def test_roundtrip(self):
        prov = ProvenanceMap(path="lower", meta={"note": "x"})
        prov.add(1, 2)
        prov.add_range(0x10, 0x20, 0x30, 0x40, kind=KIND_DERIVED)
        prov.add_identity(0x100, 0x200)
        payload = json.loads(json.dumps(prov.to_dict()))
        assert ProvenanceMap.from_dict(payload) == prov

    def test_entry_roundtrip_preserves_ranges(self):
        entry = ProvenanceEntry(1, 2, KIND_BLOCK, 3, 4)
        assert ProvenanceEntry.from_dict(entry.to_dict()) == entry


def _report(model, successes, target="t", trace_length=10):
    faults = [Fault(model, i, address, "mov")
              for i, address in enumerate(successes)]
    report = CampaignReport(target=target, model=model,
                            trace_length=trace_length,
                            total_faults=trace_length)
    report.successes = faults
    return report


class TestDifferentialJoin:
    def test_all_four_classes(self):
        prov = ProvenanceMap(path="patcher")
        prov.add(0x10, 0x110)          # eliminated
        prov.add(0x20, 0x120)          # surviving
        prov.add(0x40, 0x140)          # original, never vulnerable
        # 0x30 has no mapping at all -> unmapped
        baseline = {"skip": _report("skip", [0x10, 0x20, 0x30])}
        hardened = {"skip": _report(
            "skip", [0x120, 0x140, 0x999])}  # survive, intro, intro
        diff = differential_report(baseline, hardened, prov)

        by_status = {}
        for point in diff.points:
            by_status.setdefault(point.status, []).append(point)
        assert [p.original_address for p in by_status[ELIMINATED]] \
            == [0x10]
        assert [p.original_address for p in by_status[SURVIVING]] \
            == [0x20]
        assert by_status[SURVIVING][0].rewritten_addresses == (0x120,)
        assert [p.original_address for p in by_status[UNMAPPED]] \
            == [0x30]
        introduced = sorted(by_status[INTRODUCED],
                            key=lambda p: p.rewritten_addresses)
        assert introduced[0].original_address == 0x40
        assert introduced[1].original_address is None
        assert introduced[1].rewritten_addresses == (0x999,)

    def test_invariant_baseline_partition(self):
        prov = ProvenanceMap()
        prov.add(0x10, 0x110)
        baseline = {"skip": _report("skip", [0x10, 0x20, 0x30, 0x30])}
        hardened = {"skip": _report("skip", [])}
        diff = differential_report(baseline, hardened, prov)
        census = diff.counts(model="skip")
        points = len(baseline["skip"].vulnerable_points())
        assert census[ELIMINATED] + census[SURVIVING] \
            + census[UNMAPPED] == points == diff.baseline_points("skip")

    def test_model_mismatch_recorded(self):
        prov = ProvenanceMap()
        baseline = {"skip": _report("skip", []),
                    "bitflip": _report("bitflip", [])}
        hardened = {"skip": _report("skip", [])}
        diff = differential_report(baseline, hardened, prov)
        assert diff.models == ["skip"]
        assert diff.meta["models_skipped"] == ["bitflip"]

    def test_multiple_rewrites_aggregate_on_one_survivor(self):
        prov = ProvenanceMap()
        prov.add(0x10, 0x110)
        prov.add(0x10, 0x120, kind=KIND_DERIVED)
        baseline = {"skip": _report("skip", [0x10])}
        hardened = {"skip": _report("skip", [0x110, 0x120, 0x120])}
        diff = differential_report(baseline, hardened, prov)
        (survivor,) = [p for p in diff.points if p.status == SURVIVING]
        assert survivor.rewritten_addresses == (0x110, 0x120)
        assert survivor.hardened_faults == 3

    def test_sections_from_resolvers(self):
        prov = ProvenanceMap()
        prov.add(0x10, 0x110)
        baseline = {"skip": _report("skip", [0x10])}
        hardened = {"skip": _report("skip", [0x999])}
        diff = differential_report(
            baseline, hardened, prov,
            section_of_original=lambda a: ".text",
            section_of_rewritten=lambda a: ".detour")
        sections = {p.status: p.section for p in diff.points}
        assert sections == {ELIMINATED: ".text", INTRODUCED: ".detour"}
        assert set(diff.by_section()) == {".text", ".detour"}

    def test_roundtrip_lossless(self):
        prov = ProvenanceMap(path="patcher")
        prov.add(0x10, 0x110)
        baseline = {"skip": _report("skip", [0x10, 0x20])}
        hardened = {"skip": _report("skip", [0x110])}
        diff = differential_report(baseline, hardened, prov,
                                   target="demo")
        payload = json.loads(json.dumps(diff.to_dict()))
        assert DifferentialReport.from_dict(payload) == diff
        assert payload["rollup_by_model"]["skip"]["surviving"] == 1

    def test_table_renders(self):
        diff = DifferentialReport(
            target="demo", models=["skip"],
            points=[DiffPoint("skip", ELIMINATED, 0x10, (), "cmp",
                              2, 0, ".text")])
        rendered = diff.table()
        assert "eliminated=1" in rendered
        assert "0x10" in rendered
        assert ".text" in rendered


WORKLOADS = {
    "pincheck": pincheck.workload,
    "bootloader": lambda: bootloader.workload(size=8),
    "corpus": corpus.workload,
}


class TestEvaluateCountermeasures:
    """The paper's evaluation loop over all bundled workloads, both
    rewriting approaches and the skip+bitflip fault models."""

    @pytest.fixture(scope="class")
    def evaluations(self):
        results = {}
        for wl_name, factory in WORKLOADS.items():
            wl = factory()
            for approach in ("faulter+patcher", "hybrid"):
                results[wl_name, approach] = evaluate_countermeasures(
                    wl.build(), wl.good_input, wl.bad_input,
                    wl.grant_marker, approach=approach,
                    models=("skip", "bitflip"), name=wl.name)
        return results

    @pytest.mark.parametrize("wl_name", list(WORKLOADS))
    @pytest.mark.parametrize("approach", ["faulter+patcher", "hybrid"])
    @pytest.mark.parametrize("model", ["skip", "bitflip"])
    def test_baseline_partition_invariant(self, evaluations, wl_name,
                                          approach, model):
        """Every baseline vulnerable point lands in exactly one of
        eliminated/surviving/unmapped."""
        evaluation = evaluations[wl_name, approach]
        census = evaluation.diff.counts(model=model)
        baseline = len(
            evaluation.baseline_reports[model].vulnerable_points())
        assert census[ELIMINATED] + census[SURVIVING] \
            + census[UNMAPPED] == baseline
        assert baseline > 0  # every bundled workload is attackable

    @pytest.mark.parametrize("wl_name", list(WORKLOADS))
    @pytest.mark.parametrize("approach", ["faulter+patcher", "hybrid"])
    def test_skip_model_fully_eliminated(self, evaluations, wl_name,
                                         approach):
        """Both hardening approaches defeat the model they were built
        against on every bundled workload."""
        evaluation = evaluations[wl_name, approach]
        census = evaluation.diff.counts(model="skip")
        assert census[SURVIVING] == 0
        assert census[UNMAPPED] == 0
        assert evaluation.diff.eliminated_percent("skip") == 100.0

    @pytest.mark.parametrize("wl_name", list(WORKLOADS))
    @pytest.mark.parametrize("approach", ["faulter+patcher", "hybrid"])
    def test_diff_roundtrips(self, evaluations, wl_name, approach):
        diff = evaluations[wl_name, approach].diff
        payload = json.loads(json.dumps(diff.to_dict()))
        assert DifferentialReport.from_dict(payload) == diff

    @pytest.mark.parametrize("wl_name", list(WORKLOADS))
    @pytest.mark.parametrize("approach", ["faulter+patcher", "hybrid"])
    def test_provenance_roundtrips(self, evaluations, wl_name,
                                   approach):
        provenance = evaluations[wl_name, approach].provenance
        payload = json.loads(json.dumps(provenance.to_dict()))
        assert ProvenanceMap.from_dict(payload) == provenance
        assert provenance.entries  # all paths emit real mappings

    def test_evaluation_to_dict_json_safe(self, evaluations):
        evaluation = evaluations["pincheck", "faulter+patcher"]
        payload = json.loads(json.dumps(evaluation.to_dict()))
        assert payload["approach"] == "faulter+patcher"
        assert payload["diff"]["models"] == ["skip", "bitflip"]
        assert payload["harden"]["provenance"]["path"] == "patcher"

    def test_detour_approach_end_to_end(self):
        wl = corpus.workload()
        evaluation = evaluate_countermeasures(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            approach="detour", models=("skip",), name=wl.name)
        census = evaluation.diff.counts(model="skip")
        baseline = len(
            evaluation.baseline_reports["skip"].vulnerable_points())
        assert census[ELIMINATED] + census[SURVIVING] \
            + census[UNMAPPED] == baseline
        assert evaluation.provenance.path == "detour"

    def test_streaming_knobs_reach_both_campaigns(self):
        wl = pincheck.workload()
        evaluation = evaluate_countermeasures(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            models=("skip",), stream=True, max_resident_points=7)
        for report in (evaluation.baseline_reports["skip"],
                       evaluation.hardened_reports["skip"]):
            assert report.meta["peak_resident_points"] <= 7
