"""Statistical fault injection: sizing formula and estimates."""

import pytest

from repro.faulter import Faulter
from repro.faulter.statistical import (
    StatisticalEstimate, estimate_vulnerability, required_samples)
from repro.workloads import pincheck


@pytest.fixture(scope="module")
def faulter():
    wl = pincheck.workload()
    return Faulter(wl.build(), wl.good_input, wl.bad_input,
                   wl.grant_marker, name=wl.name)


class TestSampleSizing:
    def test_classic_asymptotic_values(self):
        # the textbook n = z^2 p(1-p)/e^2 values at large N
        assert required_samples(10**9, 0.05, 0.95) == 385
        assert abs(required_samples(10**9, 0.01, 0.95) - 9604) <= 1

    def test_finite_population_correction(self):
        # small populations need far fewer samples
        assert required_samples(1000, 0.05, 0.95) < 300
        assert required_samples(100, 0.05, 0.95) < 100

    def test_never_exceeds_population(self):
        for population in (1, 10, 50):
            assert required_samples(population, 0.001, 0.99) <= \
                population

    def test_rejects_unknown_confidence(self):
        with pytest.raises(ValueError):
            required_samples(100, 0.05, confidence=0.42)


class TestEstimates:
    def test_estimate_contains_exhaustive_truth(self, faulter):
        exhaustive = faulter.run_campaign("bitflip")
        truth = exhaustive.outcomes["success"] / exhaustive.total_faults
        estimate = estimate_vulnerability(faulter, "bitflip",
                                          margin=0.02, seed=11)
        low, high = estimate.interval
        assert low <= truth <= high, (
            f"truth {truth:.4f} outside [{low:.4f}, {high:.4f}]")
        assert estimate.population == exhaustive.total_faults

    def test_full_sampling_equals_exhaustive(self, faulter):
        exhaustive = faulter.run_campaign("skip")
        estimate = estimate_vulnerability(
            faulter, "skip", samples=10**9, seed=0)
        assert estimate.samples == estimate.population
        assert estimate.successes == exhaustive.outcomes["success"]
        assert estimate.margin == 0.0  # no sampling error left

    def test_deterministic_for_seed(self, faulter):
        first = estimate_vulnerability(faulter, "bitflip",
                                       samples=150, seed=5)
        second = estimate_vulnerability(faulter, "bitflip",
                                        samples=150, seed=5)
        assert first.successes == second.successes
        assert first.point == second.point

    def test_summary_renders(self, faulter):
        estimate = estimate_vulnerability(faulter, "skip", samples=10)
        text = estimate.summary()
        assert "confidence" in text
        assert "population" in text
