"""Unified campaign engine: spaces, backends, checkpoint replay.

The load-bearing property asserted throughout: every backend and every
checkpoint interval produces a report *bit-identical* to the
master-walk sequential run (``CampaignReport.__eq__`` excludes only
execution metadata).
"""

import math

import pytest

from repro.emu.machine import CheckpointStore, Machine
from repro.faulter import (
    CampaignReport, Faulter, KFaultProductSpace, MultiprocessBackend,
    SampledSpace, SequentialBackend, WindowedSpace, backend_by_name)
from repro.faulter.parallel import _split, merge_reports
from repro.faulter.space import ExhaustiveSpace
from repro.faulter.statistical import estimate_vulnerability
from repro.workloads import bootloader, pincheck


@pytest.fixture(scope="module")
def wl():
    return pincheck.workload()


@pytest.fixture(scope="module")
def faulter(wl):
    return Faulter(wl.build(), wl.good_input, wl.bad_input,
                   wl.grant_marker, name=wl.name)


@pytest.fixture(scope="module")
def boot_faulter():
    wl = bootloader.workload(size=8)
    return Faulter(wl.build(), wl.good_input, wl.bad_input,
                   wl.grant_marker, name=wl.name)


class TestSplitEdgeCases:
    def test_parts_exceed_total(self):
        windows = _split(3, 8)
        assert [list(w) for w in windows] == [[0], [1], [2]]

    def test_total_zero(self):
        assert _split(0, 4) == []

    def test_parts_zero(self):
        assert _split(10, 0) == []

    def test_coverage_preserved(self):
        for total in (1, 7, 100, 101):
            for parts in (1, 2, 3, 8, 200):
                seen = [i for w in _split(total, parts) for i in w]
                assert seen == list(range(total))


class TestSpaces:
    def test_exhaustive_covers_trace_times_variants(self, faulter):
        ctx = faulter.engine().context("bitflip")
        points = list(ExhaustiveSpace().enumerate(ctx))
        assert len(points) == ctx.population()
        assert [p.order for p in points] == list(range(len(points)))
        assert all(p.arity == 1 for p in points)

    def test_windowed_clips_and_sorts(self, faulter):
        ctx = faulter.engine().context("skip")
        space = WindowedSpace(indices=(5, 3, 3, 10**6))
        steps = [p.first_step for p in space.enumerate(ctx)]
        assert steps == [3, 5]

    def test_sampled_is_within_population(self, faulter):
        ctx = faulter.engine().context("bitflip")
        space = SampledSpace(samples=40, seed=9)
        points = list(space.enumerate(ctx))
        assert len(points) == 40
        for point in points:
            step = point.first_step
            assert 0 <= step < len(ctx.trace)
            assert point.details[0] in ctx.variants(step)

    def test_k_fault_steps_distinct_and_sorted(self, faulter):
        ctx = faulter.engine().context("skip")
        space = KFaultProductSpace(k=3, samples=50, seed=2)
        for point in space.enumerate(ctx):
            assert list(point.steps) == sorted(set(point.steps))
            assert point.arity == 3

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KFaultProductSpace(k=0, samples=10, seed=0)

    def test_partition_preserves_points(self, faulter):
        ctx = faulter.engine().context("bitflip")
        space = ExhaustiveSpace()
        whole = list(space.enumerate(ctx))
        parts = space.partition(ctx, 4)
        recombined = [p for part in parts
                      for p in part.enumerate(ctx)]
        assert recombined == whole
        assert len(parts) == 4

    def test_partition_empty_space(self, faulter):
        ctx = faulter.engine().context("skip")
        assert WindowedSpace(indices=()).partition(ctx, 4) == []


class TestCheckpointMachinery:
    def test_run_emits_periodic_checkpoints(self, wl):
        machine = Machine(wl.build(), stdin=wl.bad_input)
        sink = []
        result = machine.run(checkpoint_interval=5,
                             checkpoint_sink=sink)
        store = CheckpointStore(sink)
        assert store.steps[0] == 0
        assert store.steps == list(range(0, result.steps, 5))

    def test_infinite_interval_keeps_only_step_zero(self, wl):
        machine = Machine(wl.build(), stdin=wl.bad_input)
        sink = []
        machine.run(checkpoint_interval=math.inf, checkpoint_sink=sink)
        assert [cp.step for cp in sink] == [0]

    def test_nearest_picks_floor_checkpoint(self, wl):
        machine = Machine(wl.build(), stdin=wl.bad_input)
        sink = []
        machine.run(checkpoint_interval=4, checkpoint_sink=sink)
        store = CheckpointStore(sink)
        assert store.nearest(0).step == 0
        assert store.nearest(7).step == 4
        assert store.nearest(8).step == 8

    def test_restore_replays_identically(self, wl):
        """Resuming from a mid-trace checkpoint must finish with the
        same observable behaviour as the uninterrupted run."""
        machine = Machine(wl.build(), stdin=wl.bad_input)
        sink = []
        full = machine.run(checkpoint_interval=6, checkpoint_sink=sink)
        cp = CheckpointStore(sink).nearest(full.steps // 2)
        machine.restore_checkpoint(cp)
        resumed = machine.run()
        assert resumed.reason == full.reason
        assert resumed.exit_code == full.exit_code
        assert resumed.stdout == full.stdout
        assert cp.step + resumed.steps == full.steps

    def test_restore_order_is_arbitrary(self, wl):
        """Checkpoints restore cleanly in any order (unlike the
        journal, which only rolls back)."""
        machine = Machine(wl.build(), stdin=wl.bad_input)
        sink = []
        full = machine.run(checkpoint_interval=4, checkpoint_sink=sink)
        store = CheckpointStore(sink)
        late = store.nearest(full.steps - 1)
        early = store.nearest(4)
        machine.restore_checkpoint(late)
        machine.run()
        machine.restore_checkpoint(early)
        resumed = machine.run()
        assert resumed.stdout == full.stdout


class TestCheckpointReplayBitIdentity:
    INTERVALS = (1, 64, math.inf)

    @pytest.mark.parametrize("model", ["skip", "bitflip"])
    def test_exhaustive_identical_across_intervals(self, faulter,
                                                   model):
        baseline = faulter.run_campaign(model)
        for interval in self.INTERVALS:
            replayed = faulter.run_campaign(
                model, checkpoint_interval=interval)
            assert replayed == baseline, f"interval={interval}"

    def test_bootloader_identical_across_intervals(self, boot_faulter):
        baseline = boot_faulter.run_campaign("skip")
        for interval in self.INTERVALS:
            assert boot_faulter.run_campaign(
                "skip", checkpoint_interval=interval) == baseline

    def test_statistical_identical_across_intervals(self, faulter):
        estimates = [
            estimate_vulnerability(faulter, "bitflip", samples=120,
                                   seed=5,
                                   checkpoint_interval=interval)
            for interval in (None, *self.INTERVALS)
        ]
        first = estimates[0]
        for estimate in estimates[1:]:
            assert estimate == first

    def test_pair_identical_across_intervals(self, faulter):
        baseline = faulter.run_pair_campaign("skip", samples=80, seed=7)
        for interval in self.INTERVALS:
            replayed = faulter.run_k_fault_campaign(
                "skip", k=2, samples=80, seed=7,
                checkpoint_interval=interval)
            assert replayed == baseline


class TestBackendEquivalence:
    @pytest.mark.parametrize("model", ["skip", "bitflip"])
    def test_multiprocess_equals_sequential(self, faulter, model):
        sequential = faulter.run_campaign(model)
        parallel = faulter.run_campaign(
            model, backend=MultiprocessBackend(workers=3))
        assert parallel == sequential

    def test_multiprocess_checkpointed_equals_sequential(self, faulter):
        sequential = faulter.run_campaign("skip")
        parallel = faulter.run_campaign(
            "skip", backend=MultiprocessBackend(workers=2,
                                                checkpoint_interval=8))
        assert parallel == sequential

    def test_merge_of_partition_reports_equals_whole(self, faulter):
        """Window-split partial reports still merge to the full one."""
        full = faulter.run_campaign("skip")
        trace_length = full.trace_length
        windows = _split(trace_length, 3)
        partials = [faulter.run_campaign("skip", trace_window=w)
                    for w in windows]
        merged = merge_reports(partials, name=faulter.name,
                               model="skip", trace_length=trace_length)
        assert merged == full

    def test_backend_by_name(self):
        assert isinstance(backend_by_name("sequential"),
                          SequentialBackend)
        assert isinstance(backend_by_name("multiprocess"),
                          MultiprocessBackend)
        with pytest.raises(KeyError):
            backend_by_name("gpu")

    def test_conflicting_knobs_rejected(self):
        from repro.faulter.engine import resolve_backend
        with pytest.raises(ValueError):
            resolve_backend("sequential", workers=4)
        with pytest.raises(ValueError):
            resolve_backend(SequentialBackend(), checkpoint_interval=8)
        with pytest.raises(ValueError):
            resolve_backend(MultiprocessBackend(workers=2), workers=4)
        # matching knobs on an instance are not a conflict
        backend = SequentialBackend(checkpoint_interval=8)
        assert resolve_backend(backend,
                               checkpoint_interval=8) is backend

    def test_meta_records_backend(self, faulter):
        report = faulter.run_campaign("skip", checkpoint_interval=16)
        assert report.meta["backend"] == "sequential"
        assert report.meta["checkpoint_interval"] == 16
        assert report.meta["emulated_steps"] > 0


class TestKFaultCampaign:
    def test_triple_fault_campaign_runs(self, faulter):
        report = faulter.run_k_fault_campaign("skip", k=3, samples=60,
                                              seed=4)
        assert report.target.endswith("(3-faults)")
        assert sum(report.outcomes.values()) == report.total_faults

    def test_pair_detail_format_is_legacy(self, faulter):
        """k=2 successes keep the (d0, s1, d1) detail layout."""
        report = faulter.run_pair_campaign("skip", samples=400, seed=3)
        for fault in report.successes:
            assert len(fault.detail) == 3
            first_detail, second_step, second_detail = fault.detail
            assert isinstance(second_step, int)
            assert fault.trace_index < second_step


class TestReportRoundTrip:
    def test_lossless_roundtrip(self, faulter):
        import json
        report = faulter.run_campaign("bitflip")
        payload = json.loads(json.dumps(report.to_dict()))
        assert CampaignReport.from_dict(payload) == report

    def test_roundtrip_with_all_outcomes(self, faulter):
        report = faulter.run_campaign("skip", collect_outcomes=True)
        rebuilt = CampaignReport.from_dict(report.to_dict())
        assert rebuilt == report
        assert rebuilt.all_outcomes == report.all_outcomes

    def test_roundtrip_preserves_pair_details(self, faulter):
        report = faulter.run_pair_campaign("skip", samples=400, seed=3)
        rebuilt = CampaignReport.from_dict(report.to_dict())
        assert rebuilt.successes == report.successes

    def test_meta_survives_roundtrip(self, faulter):
        report = faulter.run_campaign("skip", checkpoint_interval=4)
        rebuilt = CampaignReport.from_dict(report.to_dict())
        assert rebuilt.meta == report.meta


class TestDegenerateTraces:
    def test_undecodable_trace_tail_is_skipped(self, wl):
        """A bad-input run that dies on an invalid opcode records the
        failing address as its final trace entry; the campaign must
        classify the decodable prefix instead of raising (the legacy
        driver broke out of its loop at that step)."""
        faulter = Faulter(wl.build(), wl.good_input, wl.bad_input,
                          wl.grant_marker, name=wl.name)
        clean = faulter.run_campaign("bitflip")
        broken = Faulter(wl.build(), wl.good_input, wl.bad_input,
                         wl.grant_marker, name=wl.name)
        broken._trace = broken.trace() + [0xDEAD_BEEF]
        report = broken.run_campaign("bitflip")
        assert report.total_faults == clean.total_faults
        assert report.outcomes == clean.outcomes
        assert report.trace_length == clean.trace_length + 1

    def test_k_fault_skips_offsets_without_variants(self, wl):
        """Sampled k-tuples that land on a no-variant offset (the
        undecodable tail) are rejected, not crashed on."""
        broken = Faulter(wl.build(), wl.good_input, wl.bad_input,
                         wl.grant_marker, name=wl.name)
        broken._trace = broken.trace() + [0xDEAD_BEEF]
        report = broken.run_k_fault_campaign("skip", k=2, samples=300,
                                             seed=1)
        assert sum(report.outcomes.values()) == report.total_faults
        for fault in report.successes:
            assert fault.trace_index < len(broken.trace()) - 1

    def test_zero_interval_means_single_step0_checkpoint(self, faulter):
        backend = SequentialBackend(checkpoint_interval=0)
        assert backend.checkpoint_interval == math.inf
        assert faulter.run_campaign("skip", checkpoint_interval=0) == \
            faulter.run_campaign("skip")

    def test_checkpoint_build_stops_at_last_fault_offset(self, faulter):
        """Checkpointing a 5-step window must not emulate the whole
        trace during the build run."""
        windowed = faulter.run_campaign("skip", trace_window=range(5),
                                        checkpoint_interval=1)
        full = faulter.run_campaign("skip", checkpoint_interval=1)
        assert windowed.meta["emulated_steps"] < \
            full.meta["emulated_steps"]
        assert windowed == faulter.run_campaign("skip",
                                                trace_window=range(5))


class TestTraceCaching:
    def test_trace_computed_once(self, wl):
        faulter = Faulter(wl.build(), wl.good_input, wl.bad_input,
                          wl.grant_marker, name=wl.name)
        first = faulter.trace()
        assert faulter.trace() is first

    def test_prevalidated_baselines_skip_oracle_runs(self, wl):
        probe = Faulter(wl.build(), wl.good_input, wl.bad_input,
                        wl.grant_marker, name=wl.name)
        clone = Faulter(wl.build(), wl.good_input, wl.bad_input,
                        wl.grant_marker, name=wl.name,
                        baselines=(probe.good_baseline,
                                   probe.bad_baseline))
        assert clone.run_campaign("skip") == probe.run_campaign("skip")
