"""Top-level API and command-line interface tests."""

import pytest

from repro.api import (
    APPROACHES, evaluate_countermeasures, find_vulnerabilities,
    harden_binary, hardened_elf)
from repro.binfmt import read_elf, write_elf
from repro.cli import main
from repro.emu import run_executable
from repro.workloads import pincheck


@pytest.fixture(scope="module")
def wl():
    return pincheck.workload()


class TestAPI:
    def test_find_vulnerabilities(self, wl):
        reports = find_vulnerabilities(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            models=("skip",))
        assert reports["skip"].vulnerable

    def test_accepts_raw_elf_bytes(self, wl):
        blob = write_elf(wl.build())
        reports = find_vulnerabilities(
            blob, wl.good_input, wl.bad_input, wl.grant_marker,
            models=("skip",))
        assert reports["skip"].total_faults > 0

    def test_harden_faulter_patcher(self, wl):
        result = harden_binary(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            approach="faulter+patcher")
        assert result.converged
        rebuilt = read_elf(hardened_elf(result))
        good = run_executable(rebuilt, stdin=wl.good_input)
        assert wl.grant_marker in good.stdout

    def test_harden_hybrid(self, wl):
        result = harden_binary(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            approach="hybrid")
        rebuilt = read_elf(hardened_elf(result))
        good = run_executable(rebuilt, stdin=wl.good_input)
        assert wl.grant_marker in good.stdout

    def test_unknown_approach(self, wl):
        with pytest.raises(ValueError, match="faulter"):
            harden_binary(wl.build(), wl.good_input, wl.bad_input,
                          wl.grant_marker, approach="magic")
        assert "hybrid" in APPROACHES
        assert "detour" in APPROACHES

    def test_harden_detour(self, wl):
        result = harden_binary(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            approach="detour")
        assert result.stats.patched > 0
        rebuilt = read_elf(hardened_elf(result))
        good = run_executable(rebuilt, stdin=wl.good_input)
        assert wl.grant_marker in good.stdout

    def test_evaluate_countermeasures(self, wl):
        evaluation = evaluate_countermeasures(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            models=("skip",))
        census = evaluation.diff.counts(model="skip")
        assert census["eliminated"] >= 1
        assert census["surviving"] == 0
        assert "eliminated" in evaluation.report()


class TestCLI:
    def test_demo_pincheck(self, capsys, tmp_path):
        out = tmp_path / "hardened.elf"
        code = main(["demo", "pincheck", "--approach", "faulter+patcher",
                     "-o", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "converged: True" in captured.out
        assert out.exists()
        rebuilt = read_elf(out.read_bytes())
        assert run_executable(rebuilt, stdin=b"1234").exit_code == 0

    def test_fault_subcommand(self, capsys, tmp_path, wl):
        target = tmp_path / "t.elf"
        target.write_bytes(write_elf(wl.build()))
        code = main(["fault", str(target),
                     "--good", "text:1234", "--bad", "text:6789",
                     "--marker", "ACCESS GRANTED"])
        assert code == 1  # vulnerable -> nonzero
        assert "vulnerable points" in capsys.readouterr().out

    def test_harden_subcommand(self, capsys, tmp_path, wl):
        target = tmp_path / "t.elf"
        output = tmp_path / "out.elf"
        target.write_bytes(write_elf(wl.build()))
        code = main(["harden", str(target), "-o", str(output),
                     "--good", "text:1234", "--bad", "text:6789",
                     "--marker", "ACCESS GRANTED"])
        assert code == 0
        assert output.exists()

    def test_run_subcommand(self, capsys, tmp_path, wl):
        target = tmp_path / "t.elf"
        target.write_bytes(write_elf(wl.build()))
        code = main(["run", str(target), "--stdin", "text:1234"])
        assert code == 0
        assert "ACCESS GRANTED" in capsys.readouterr().out

    def test_disasm_subcommand(self, capsys, tmp_path, wl):
        target = tmp_path / "t.elf"
        target.write_bytes(write_elf(wl.build()))
        assert main(["disasm", str(target)]) == 0
        out = capsys.readouterr().out
        assert ".section .text" in out
        assert "expected_pin" in out

    def test_hex_input_decoding(self, capsys, tmp_path, wl):
        target = tmp_path / "t.elf"
        target.write_bytes(write_elf(wl.build()))
        code = main(["run", str(target), "--stdin", "31323334"])
        assert code == 0
        assert "GRANTED" in capsys.readouterr().out


class TestCompareCLI:
    def test_compare_bundled_pincheck(self, capsys):
        """The acceptance scenario: skip model, faulter+patcher."""
        code = main(["compare", "pincheck"])
        out = capsys.readouterr().out
        assert code == 0  # nothing survives, nothing introduced
        assert "differential evaluation" in out
        assert "eliminated=" in out and "unmapped=" in out

    def test_compare_file_target(self, capsys, tmp_path, wl):
        from repro.binfmt import write_elf

        target = tmp_path / "t.elf"
        target.write_bytes(write_elf(wl.build()))
        code = main(["compare", str(target),
                     "--good", "text:1234", "--bad", "text:6789",
                     "--marker", "ACCESS GRANTED"])
        assert code == 0
        assert "eliminated" in capsys.readouterr().out

    def test_compare_file_target_requires_inputs(self, tmp_path, wl):
        from repro.binfmt import write_elf

        target = tmp_path / "t.elf"
        target.write_bytes(write_elf(wl.build()))
        with pytest.raises(SystemExit, match="--good"):
            main(["compare", str(target)])

    def test_compare_broken_oracle_exits_2(self, capsys, tmp_path,
                                           wl):
        from repro.binfmt import write_elf

        target = tmp_path / "t.elf"
        target.write_bytes(write_elf(wl.build()))
        code = main(["compare", str(target),
                     "--good", "text:9999", "--bad", "text:6789",
                     "--marker", "ACCESS GRANTED"])
        assert code == 2  # ReproError -> clean error, not a traceback
        assert "error" in capsys.readouterr().err

    def test_harden_evaluate_flag(self, capsys, tmp_path, wl):
        from repro.binfmt import write_elf

        target = tmp_path / "t.elf"
        output = tmp_path / "out.elf"
        target.write_bytes(write_elf(wl.build()))
        code = main(["harden", str(target), "-o", str(output),
                     "--evaluate",
                     "--good", "text:1234", "--bad", "text:6789",
                     "--marker", "ACCESS GRANTED"])
        assert code == 0
        out = capsys.readouterr().out
        assert "differential evaluation" in out
        assert output.exists()
        rebuilt = read_elf(output.read_bytes())
        assert run_executable(rebuilt, stdin=b"1234").exit_code == 0
